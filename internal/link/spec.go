package link

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Optimistic execution. A runner in spec mode keeps two clocks: committed —
// the conservative horizon, below which execution is final — and the
// scheduler's actual clock, which may speculate up to K sync windows ahead.
// Everything that could leak speculation out of the group is fenced:
//
//   - Outgoing data messages stamped at or after committed are withheld in a
//     per-endpoint staging buffer and published only once committed passes
//     their timestamp, so peers never observe state that might roll back.
//   - Incoming data messages are appended to a per-endpoint input log (with
//     pooled payloads deep-copied through the snap codec, since the original
//     is consumed by delivery); a rollback replays the log so no delivery is
//     lost, and the log order makes replayed event order bit-identical.
//   - A message whose delivery time is at or below the scheduler's executed
//     watermark (MaxExec) is a straggler: the group — and only the group —
//     rolls back to its last committed snapshot and re-executes. Re-sends of
//     already-published messages are deduplicated by count against a
//     publish oracle that also cross-checks (time, sub) for divergence.
//
// Orthogonally, every spec runner (speculating or not) participates in
// GVT-style committed-horizon tracking: at a stall it advertises a floor —
// the earliest virtual time at which it could ever publish a new message —
// through a seq-cst atomic, and a stalled runner that observes every
// cross-group edge empty may leap its committed clock to
// min(floors) + its minimum inbound latency, far past the per-hop ladder.
// That collapses the empty-window sync ladders that dominate
// latency-sparse graphs, costs nothing when traffic is dense (any
// in-flight message vetoes the leap), and never needs rollback.

// SpecCounters aggregates a runner's speculation activity. All fields are
// written only by the owning runner goroutine; read them after the run, or
// from that goroutine (the profiler's tick events qualify).
type SpecCounters struct {
	Snapshots   uint64 // committed-state snapshots taken
	Rollbacks   uint64 // straggler-triggered restores
	Leaps       uint64 // GVT leaps past the conservative horizon
	Replayed    uint64 // input-log deliveries re-posted after rollbacks
	WastedNanos uint64 // wall nanos of speculative execution discarded by rollbacks
}

// SpecControl configures one runner's optimistic execution; the orchestrator
// builds it per placement group and installs it with SetSpec before Run.
type SpecControl struct {
	// MaxWindows is K: how many sync windows past the committed horizon the
	// group may speculate. 0 disables speculation; the runner still runs the
	// spec loop and takes part in GVT leaping.
	MaxWindows int
	// Window is the speculation window unit; 0 means the minimum sync
	// interval across the runner's endpoints.
	Window sim.Time
	// Snapshot captures the group's committed state (component state via
	// core.Stateful, scheduler mark + pending events) into recycled buffers;
	// Restore rebuilds exactly that state. Both are orchestrator closures —
	// the fabric only decides when to call them. nil when MaxWindows is 0.
	Snapshot func() error
	Restore  func() error
	// Reason, when non-empty, marks the group conservative by construction
	// (a member component is not core.Stateful, aux state is attached, ...):
	// MaxWindows is forced to 0 and the reason surfaces in reports.
	Reason string
}

const (
	// specRecoverStreak is how many consecutive clean horizon commits earn
	// back one doubling of an adaptively lowered K.
	specRecoverStreak = 64
	// specSamplePeriod is the sampling stride for timing speculative
	// batches, mirroring profSamplePeriod's reasoning.
	specSamplePeriod = 8 // power of two
)

// specState is the per-runner half of optimistic execution.
type specState struct {
	ctl *SpecControl
	dom *SpecDomain

	k        int      // current speculation depth (adaptive, <= ctl.MaxWindows)
	window   sim.Time // speculation window unit
	minInLat sim.Time // min latency over endpoints: the leap increment

	committed sim.Time // conservative horizon: execution below is final
	snapValid bool
	snapAt    sim.Time
	snapDone  uint64 // Processed() at the snapshot

	demoted      bool   // permanently conservative (snapshot/log failure)
	demoteReason string

	rollbackPending bool
	cleanStreak     int
	specTick        uint32
	specNanos       uint64 // sampled wall nanos speculated since the snapshot

	// floor is the GVT contribution: the earliest virtual time this runner
	// could ever publish a new message at, given no new input. Lowered (to
	// committed) before consuming input, raised at a stall. Seq-cst via
	// atomic so a peer's leap read pairs with the edge-counter reads.
	floor   atomic.Int64
	scratch []uint64 // per-runner GVT read buffer, len = domain edge count

	counters SpecCounters
}

// specOut is one staged (or, payload-less, one published) outgoing message.
type specOut struct {
	T       sim.Time
	Sub     uint16
	Payload core.Message
}

// specIn is one logged incoming message. Pooled (core.Releaser) payloads are
// deep-copied into the endpoint's log buffer at [off, off+n) and re-minted
// at replay; plain payloads are logged by reference, relying on the fabric's
// standing contract that messages are immutable after send.
type specIn struct {
	T       sim.Time
	Sub     uint16
	Payload core.Message
	off, n  int32
	enc     bool
}

// epSpec is the per-endpoint half of optimistic execution.
type epSpec struct {
	withhold bool // speculative group: outgoing data is staged until committed
	owners   map[uint16]core.Component

	withheld []specOut
	log      []specIn
	logBuf   snap.Encoder

	// pubLog records (T, Sub) of every data message published since the
	// snapshot; after a rollback the first dropLeft re-sends are dropped as
	// duplicates, each cross-checked against its pubLog entry so silent
	// replay divergence panics instead of corrupting a peer.
	pubLog   []specOut
	dropLeft int

	snapTxData uint64
	snapRxData uint64

	// tx counts data messages this endpoint has staged into its outgoing
	// pipe; rx counts data messages handled from the incoming one. A GVT
	// leap reads rx before tx on every edge: observing them equal proves
	// the edge held no data at the tx-read instant. Syncs are exempt — they
	// never create events, so they cannot invalidate a leap.
	tx atomic.Uint64
	rx atomic.Uint64
}

// SetSpec installs optimistic execution on the runner. Endpoints must
// already be attached; call once, before Run.
func (r *Runner) SetSpec(ctl *SpecControl) {
	st := &specState{ctl: ctl, k: ctl.MaxWindows}
	if ctl.Reason != "" {
		st.k = 0
		st.demoted = true
		st.demoteReason = ctl.Reason
	}
	st.window = ctl.Window
	st.minInLat = sim.Infinity
	for _, e := range r.eps {
		if st.window <= 0 || e.ch.SyncInterval < st.window {
			st.window = e.ch.SyncInterval
		}
		if e.ch.Latency < st.minInLat {
			st.minInLat = e.ch.Latency
		}
		e.spec = &epSpec{withhold: st.k > 0}
	}
	r.spec = st
}

// SetSpecOwner records the component owning the sink behind sub, so logged
// pooled payloads can re-mint from its pool at replay. Requires SetSpec.
func (e *Endpoint) SetSpecOwner(sub uint16, owner core.Component) {
	if e.spec == nil {
		panic("link: SetSpecOwner on endpoint " + e.label + " without SetSpec")
	}
	if e.spec.owners == nil {
		e.spec.owners = make(map[uint16]core.Component)
	}
	e.spec.owners[sub] = owner
}

// SpecStats returns the runner's speculation counters, the reason it runs
// conservatively ("" when speculative), and whether spec mode is active.
func (r *Runner) SpecStats() (SpecCounters, string, bool) {
	if r.spec == nil {
		return SpecCounters{}, "", false
	}
	return r.spec.counters, r.spec.demoteReason, true
}

// SpecDomain is the set of runners sharing a GVT: all groups of one
// optimistic run. Construct after SetSpec on every runner.
type SpecDomain struct {
	runners []*Runner
	// cons[i]/pubs[i] are the consumer/producer counters of directed edge i
	// (each endpoint's incoming pipe, produced by its peer).
	cons []*atomic.Uint64
	pubs []*atomic.Uint64
}

// NewSpecDomain wires the runners into one leap domain.
func NewSpecDomain(runners []*Runner) *SpecDomain {
	d := &SpecDomain{runners: runners}
	for _, r := range runners {
		if r.spec == nil {
			panic("link: NewSpecDomain with runner " + r.name + " missing SetSpec")
		}
		for _, e := range r.eps {
			if e.peer.spec == nil {
				panic("link: NewSpecDomain with endpoint " + e.peer.label + " outside the domain")
			}
			d.cons = append(d.cons, &e.spec.rx)
			d.pubs = append(d.pubs, &e.peer.spec.tx)
		}
	}
	for _, r := range runners {
		r.spec.dom = d
		r.spec.scratch = make([]uint64, len(d.cons))
	}
	return d
}

// tryLeap attempts a GVT leap for r: if every cross-group edge is observably
// empty, committed jumps to min(all floors) + r's minimum inbound latency.
// The read sequence is a two-cut snapshot: every consumer counter, then every
// producer counter (a mismatch means data was in flight, or consumed
// concurrently — either voids the emptiness proof), then every floor, then
// every producer counter again. The confirmation pass closes the cut: a
// message published between the first producer read and a floor read is
// bounded by neither — its sender may have parked and raised its floor after
// sending — but it moves the producer counter, so re-reading vetoes the
// attempt. With both passes equal, every message not yet absorbed when the
// cut opened was published after it closed, and each runner's future sends
// are bounded by the floor value actually read: pending work and staged
// output sit at or above the floor when it is stored, and input consumed
// later delivers at or above the sender's committed clock, which the floor
// never exceeds. min(floors) is therefore a true global lower bound on every
// future delivery, and adding r's minimum inbound latency keeps it one.
func (d *SpecDomain) tryLeap(r *Runner) bool {
	st := r.spec
	for i, c := range d.cons {
		st.scratch[i] = c.Load()
	}
	for i, p := range d.pubs {
		if p.Load() != st.scratch[i] {
			return false // data in flight (or consumed concurrently): no proof
		}
	}
	gvt := sim.Infinity
	for _, rr := range d.runners {
		if f := sim.Time(rr.spec.floor.Load()); f < gvt {
			gvt = f
		}
	}
	for i, p := range d.pubs {
		if p.Load() != st.scratch[i] {
			return false // published inside the cut: floors may not bound it
		}
	}
	target := r.end
	if gvt < r.end {
		target = gvt + st.minInLat
		if target > r.end {
			target = r.end
		}
	}
	if target <= st.committed {
		return false
	}
	st.committed = target
	st.counters.Leaps++
	return true
}

// runSpec is the optimistic analogue of Run. Structure per round:
// lower floor → drain (collect stragglers) → rollback if needed → advance
// committed along the conservative ladder → execute the committed region →
// publish withheld output below committed → refresh the snapshot at a quiet
// point → speculate up to K windows → sync at committed → leap or park.
func (r *Runner) runSpec(end sim.Time) {
	st := r.spec
	r.end = end
	r.epoch = time.Now()
	for _, c := range r.comps {
		if r.restored {
			rs, ok := c.(restartable)
			if !ok {
				panic("link: restored run with non-restorable component " + c.Name())
			}
			rs.StartRestored(end)
			continue
		}
		c.Start(end)
	}
	st.committed = r.sched.Now()
	st.floor.Store(int64(st.committed))
	if st.k > 0 {
		r.specSnapshot()
	}
	for {
		st.floor.Store(int64(r.specFloorLow()))
		r.drainSpec()
		if st.rollbackPending {
			r.specRollback()
		}
		h := r.horizon()
		if h > end {
			h = end
		}
		advanced := h > st.committed
		if advanced {
			st.committed = h
		}
		if st.committed > r.sched.Now() || r.runnableBefore(st.committed) {
			r.sched.RunBefore(st.committed)
		}
		r.releaseWithheldAll()
		if st.k > 0 && !st.demoted && r.sched.MaxExec() < st.committed && r.specDirty() {
			r.specSnapshot()
		}
		if advanced {
			r.specCommitTick()
		}
		if cap := r.specCap(); cap > st.committed && (cap > r.sched.Now() || r.runnableBefore(cap)) {
			st.specTick++
			if st.specTick&(specSamplePeriod-1) == 0 {
				start := time.Since(r.epoch)
				r.sched.RunBefore(cap)
				st.specNanos += uint64(time.Since(r.epoch)-start) * specSamplePeriod
			} else {
				r.sched.RunBefore(cap)
			}
		}
		r.syncAt(st.committed)
		if r.OnAdvance != nil {
			r.OnAdvance(st.committed)
		}
		if st.committed >= end {
			// This runner will never publish data again: lift its floor to
			// infinity so stalled peers' GVT leaps are not capped by a stale
			// promise from a goroutine that has already returned.
			st.floor.Store(int64(sim.Infinity))
			for _, e := range r.eps {
				e.finish(end)
			}
			return
		}
		if r.horizon() > st.committed {
			continue
		}
		r.specBlock()
	}
}

// specFloorLow returns the sound lowered floor: the earliest virtual time
// this runner could publish a new data message at. Future input delivers at
// or above committed (handleSpec enforces it), so committed bounds sends it
// causes — but a GVT leap raises committed past still-unexecuted pending
// events, and their sends (plus already-staged withheld output) carry stamps
// below the new committed. Taking the min over all three keeps the advertised
// promise true in every round; outside the round after a leap it equals
// committed exactly.
func (r *Runner) specFloorLow() sim.Time {
	st := r.spec
	f := st.committed
	if t, ok := r.sched.PeekTime(); ok && t < f {
		f = t
	}
	for _, e := range r.eps {
		if sp := e.spec; len(sp.withheld) > 0 && sp.withheld[0].T < f {
			f = sp.withheld[0].T
		}
	}
	return f
}

// specCap is the speculation bound: committed + K windows, only while a
// valid snapshot exists to roll back to.
func (r *Runner) specCap() sim.Time {
	st := r.spec
	if st.k <= 0 || !st.snapValid {
		return st.committed
	}
	cap := st.committed + sim.Time(st.k)*st.window
	if cap > r.end {
		cap = r.end
	}
	return cap
}

// specDirty reports whether the committed state has moved past the snapshot.
func (r *Runner) specDirty() bool {
	st := r.spec
	if !st.snapValid {
		return true
	}
	if r.sched.Processed() != st.snapDone {
		return true
	}
	for _, e := range r.eps {
		if len(e.spec.log) > 0 {
			return true
		}
	}
	return false
}

// specSnapshot refreshes the committed restore point. Callers guarantee a
// quiet scheduler (MaxExec < committed: nothing speculative has executed);
// the speculative clock advance, if any, is rewound so the capture sits
// exactly at the committed horizon. Failure (closure events in the queue, an
// unregistered payload codec) demotes the runner to conservative execution
// instead of failing the run.
func (r *Runner) specSnapshot() {
	st := r.spec
	for _, e := range r.eps {
		if e.spec.dropLeft != 0 {
			panic(fmt.Sprintf("link: %s snapshot with %d unmatched replay re-sends", e.label, e.spec.dropLeft))
		}
	}
	if r.sched.Now() > st.committed {
		r.sched.Rewind(st.committed)
	}
	if err := st.ctl.Snapshot(); err != nil {
		r.specDemote("snapshot failed: " + err.Error())
		return
	}
	st.snapValid = true
	st.snapAt = st.committed
	st.snapDone = r.sched.Processed()
	st.specNanos = 0
	for _, e := range r.eps {
		sp := e.spec
		sp.snapTxData = e.Stats.TxData
		sp.snapRxData = e.Stats.RxData
		sp.log = sp.log[:0]
		sp.logBuf.Reset()
		sp.pubLog = sp.pubLog[:0]
	}
	st.counters.Snapshots++
}

// specDemote permanently disables speculation for the runner, recording why.
// Only legal at points where no uncommitted execution is live (initial
// snapshot, quiet-point refresh, or immediately after a rollback), which
// every call site guarantees.
func (r *Runner) specDemote(reason string) {
	st := r.spec
	st.demoted = true
	if st.demoteReason == "" {
		st.demoteReason = reason
	}
	st.k = 0
	r.specDisarm()
}

// specDisarm drops the rollback apparatus after speculation stops (adaptive
// K reaching 0, or demotion): no rollback can be needed once execution stays
// below committed, so the logs only waste memory. Withheld staging and the
// dedup window (dropLeft/pubLog) stay live — in-flight replay dedup must
// still complete.
func (r *Runner) specDisarm() {
	st := r.spec
	st.snapValid = false
	for _, e := range r.eps {
		sp := e.spec
		sp.log = sp.log[:0]
		sp.logBuf.Reset()
	}
}

// specCommitTick rewards a clean horizon commit: after specRecoverStreak of
// them in a row, an adaptively lowered K earns one doubling back.
func (r *Runner) specCommitTick() {
	st := r.spec
	if st.demoted || st.k >= st.ctl.MaxWindows {
		return
	}
	st.cleanStreak++
	if st.cleanStreak < specRecoverStreak {
		return
	}
	st.cleanStreak = 0
	if st.k == 0 {
		st.k = 1
	} else if st.k *= 2; st.k > st.ctl.MaxWindows {
		st.k = st.ctl.MaxWindows
	}
}

// specRollback restores the group to its last committed snapshot after a
// straggler: discard speculative output and pending events, rebuild
// component and scheduler state, arm re-send dedup, and replay the input
// log. The straggler itself was logged, so it replays too.
func (r *Runner) specRollback() {
	st := r.spec
	if !st.snapValid {
		panic("link: runner " + r.name + " rollback without a valid snapshot")
	}
	st.rollbackPending = false
	st.counters.Rollbacks++
	st.counters.WastedNanos += st.specNanos
	st.specNanos = 0
	for _, e := range r.eps {
		sp := e.spec
		for i := range sp.withheld {
			core.ReleaseMessage(sp.withheld[i].Payload)
			sp.withheld[i].Payload = nil
		}
		sp.withheld = sp.withheld[:0]
	}
	r.sched.DiscardPending(core.ReleaseMessage)
	if err := st.ctl.Restore(); err != nil {
		panic("link: runner " + r.name + " rollback restore failed: " + err.Error())
	}
	for _, e := range r.eps {
		sp := e.spec
		e.Stats.TxData = sp.snapTxData
		e.Stats.RxData = sp.snapRxData
		sp.dropLeft = len(sp.pubLog)
		for i := range sp.log {
			rec := &sp.log[i]
			payload := rec.Payload
			if rec.enc {
				dec := snap.NewDecoder(sp.logBuf.Bytes()[rec.off : rec.off+rec.n])
				p, err := core.DecodePayload(dec, sp.owners[rec.Sub])
				if err != nil {
					panic(fmt.Sprintf("link: %s replay decode: %v", e.label, err))
				}
				payload = p
			}
			r.sched.PostDelivery(rec.T+e.ch.Latency, e.srcFor[rec.Sub], e.sinks[rec.Sub], payload)
			e.Stats.RxData += msgCount(payload)
			st.counters.Replayed++
		}
	}
	st.cleanStreak = 0
	st.k /= 2
	if st.k == 0 {
		r.specDisarm()
	}
}

// drainSpec is drainAll with the speculative receive path.
func (r *Runner) drainSpec() {
	for _, e := range r.eps {
		if e.in.empty() {
			if !e.peerDone {
				if _, closed := e.in.drain(e.handleSpec); closed {
					e.peerDone = true
					r.horizonOK = false
				}
			}
			continue
		}
		r.procTick++
		if r.procTick&(profSamplePeriod-1) == 0 {
			start := time.Since(r.epoch)
			e.in.drain(e.handleSpec)
			e.Stats.ProcNanos += uint64(time.Since(r.epoch)-start) * profSamplePeriod
		} else {
			e.in.drain(e.handleSpec)
		}
		e.Stats.PeakDepth = e.in.peakDepth()
	}
}

// handleSpec processes one incoming message under speculation: log it for
// replay, detect stragglers against the executed watermark, rewind the
// purely speculative clock advance when needed, and deliver.
func (e *Endpoint) handleSpec(m Message) {
	if m.T < e.lastRecvT {
		panic(fmt.Sprintf("link: %s received non-monotone timestamp %v after %v",
			e.label, m.T, e.lastRecvT))
	}
	e.lastRecvT = m.T
	r := e.runner
	r.horizonOK = false
	if m.Kind == KindSync {
		e.Stats.RxSync++
		return
	}
	e.Stats.RxData += msgCount(m.Payload)
	sp := e.spec
	sp.rx.Add(1)
	st := r.spec
	d := m.T + e.ch.Latency
	if d < st.committed {
		panic(fmt.Sprintf("link: %s data for %v below committed horizon %v", e.label, d, st.committed))
	}
	if st.snapValid {
		if _, pooled := m.Payload.(core.Releaser); pooled {
			// The delivery consumes the original, so the log needs a deep
			// copy. If the payload has no codec (or no pool owner to re-mint
			// from), speculation cannot continue safely: fall back to the
			// committed snapshot now — the log up to here replays — and run
			// conservatively from it, delivering this message on committed
			// state where it never needs replaying.
			off := sp.logBuf.Len()
			var err error
			if owner := sp.owners[m.Sub]; owner == nil {
				err = fmt.Errorf("%w: no pool owner for sub %d", core.ErrUnknownSink, m.Sub)
			} else {
				err = core.EncodePayload(&sp.logBuf, m.Payload)
			}
			if err != nil {
				r.specRollback()
				r.specDemote("input not loggable: " + err.Error())
			} else {
				sp.log = append(sp.log, specIn{T: m.T, Sub: m.Sub,
					off: int32(off), n: int32(sp.logBuf.Len() - off), enc: true})
			}
		} else {
			sp.log = append(sp.log, specIn{T: m.T, Sub: m.Sub, Payload: m.Payload})
		}
	}
	if st.snapValid && (st.rollbackPending || d <= r.sched.MaxExec()) {
		// Straggler (or riding one already detected this drain): state will
		// rewind below d, and the logged copy replays. The original payload
		// is not delivered, so return any pooled resources now.
		st.rollbackPending = true
		core.ReleaseMessage(m.Payload)
		return
	}
	if d <= r.sched.MaxExec() {
		panic(fmt.Sprintf("link: %s straggler at %v (executed to %v) with no snapshot",
			e.label, d, r.sched.MaxExec()))
	}
	sink, ok := e.sinks[m.Sub]
	if !ok {
		panic(fmt.Sprintf("link: %s has no sink for sub-channel %d", e.label, m.Sub))
	}
	r.sched.Rewind(d)
	r.sched.PostDelivery(d, e.srcFor[m.Sub], sink, m.Payload)
}

// releaseWithheldAll publishes every withheld message whose timestamp fell
// below the committed horizon.
func (r *Runner) releaseWithheldAll() {
	committed := r.spec.committed
	for _, e := range r.eps {
		if sp := e.spec; len(sp.withheld) > 0 {
			e.releaseSpec(committed, sp)
		}
	}
}

// releaseSpec publishes the committed prefix of the withheld buffer. The
// buffer is time-ordered by construction: entries are appended in execution
// order with nondecreasing stamps (a rollback clears it wholesale), so the
// release is a prefix drain, no sort. After a rollback the first dropLeft
// publishes are re-sends of already-published messages: they are dropped,
// each verified against the publish oracle.
func (e *Endpoint) releaseSpec(committed sim.Time, sp *epSpec) {
	n := 0
	for n < len(sp.withheld) && sp.withheld[n].T < committed {
		n++
	}
	if n == 0 {
		return
	}
	record := e.runner.spec.snapValid
	for i := 0; i < n; i++ {
		m := &sp.withheld[i]
		if sp.dropLeft > 0 {
			want := sp.pubLog[len(sp.pubLog)-sp.dropLeft]
			if want.T != m.T || want.Sub != m.Sub {
				panic(fmt.Sprintf("link: %s replay divergence: re-send (%v, sub %d) != published (%v, sub %d)",
					e.label, m.T, m.Sub, want.T, want.Sub))
			}
			sp.dropLeft--
			core.ReleaseMessage(m.Payload)
			m.Payload = nil
			continue
		}
		if record {
			sp.pubLog = append(sp.pubLog, specOut{T: m.T, Sub: m.Sub})
		}
		e.out.push(Message{T: m.T, Kind: KindData, Sub: m.Sub, Payload: m.Payload})
		sp.tx.Add(1)
		if m.T > e.lastSentT {
			e.lastSentT = m.T
		}
		m.Payload = nil
	}
	rest := copy(sp.withheld, sp.withheld[n:])
	for i := rest; i < len(sp.withheld); i++ {
		sp.withheld[i] = specOut{}
	}
	sp.withheld = sp.withheld[:rest]
}

// syncAt emits a sync stamped t (the committed horizon — never the
// speculative clock) on every endpoint, then publishes everything staged.
func (r *Runner) syncAt(t sim.Time) {
	if t != r.lastSyncAll {
		r.lastSyncAll = t
		for _, e := range r.eps {
			e.sendSync(t)
			e.out.flush()
		}
		return
	}
	r.flushAll()
}

// specBlock is the stall path: advertise the floor, try a GVT leap, and
// otherwise park on the limiting endpoint like blockOnLimiting. The floor
// is raised only here — after everything runnable has run and everything
// staged is flushed — and lowered back to committed before any new input is
// consumed, so a concurrent leap reader never trusts a stale promise.
func (r *Runner) specBlock() {
	st := r.spec
	r.flushAll()
	f := sim.Infinity
	if t, ok := r.sched.PeekTime(); ok {
		f = t
	}
	for _, e := range r.eps {
		if sp := e.spec; len(sp.withheld) > 0 && sp.withheld[0].T < f {
			f = sp.withheld[0].T
		}
	}
	if f < st.committed {
		f = st.committed
	}
	st.floor.Store(int64(f))
	if st.dom != nil && st.dom.tryLeap(r) {
		return
	}
	var limiting *Endpoint
	h := sim.Infinity
	for _, e := range r.eps {
		if eh := e.horizon(); eh < h {
			h = eh
			limiting = e
		}
	}
	if limiting == nil {
		panic("link: runner " + r.name + " blocked with no endpoints")
	}
	m, ok, closed := limiting.in.tryRecv()
	if !ok && !closed {
		r.waitTick++
		var start time.Duration
		sampled := r.waitTick&(waitSamplePeriod-1) == 0
		if sampled {
			start = time.Since(r.epoch)
		}
		m, ok, closed = limiting.in.recvAdaptive()
		if sampled {
			limiting.Stats.WaitNanos += uint64(time.Since(r.epoch)-start) * waitSamplePeriod
		}
	}
	st.floor.Store(int64(r.specFloorLow()))
	if !ok {
		limiting.peerDone = true
		r.horizonOK = false
		return
	}
	r.procTick++
	if r.procTick&(profSamplePeriod-1) == 0 {
		start := time.Since(r.epoch)
		limiting.handleSpec(m)
		limiting.Stats.ProcNanos += uint64(time.Since(r.epoch)-start) * profSamplePeriod
	} else {
		limiting.handleSpec(m)
	}
}
