package link

import (
	"testing"

	"repro/internal/sim"
)

// Microbenchmarks for the lock-free SPSC ring itself, isolated from the
// synchronization protocol: per-message cost of the staged/batched publish
// path, the bulk drain paths, and the cross-goroutine stream including the
// park/wake gate. scripts/bench.sh records them in BENCH_fabric.json.

// BenchmarkFabricSendTryRecv is the unbatched floor: one publish and one
// consumer pop per message, single goroutine (no parking).
func BenchmarkFabricSendTryRecv(b *testing.B) {
	p := newPipe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
		if _, ok, _ := p.tryRecv(); !ok {
			b.Fatal("empty after send")
		}
	}
}

// BenchmarkFabricBatchPublishDrain stages a segment's worth of messages,
// publishes them with one flush, and consumes them in place with drain —
// the coupled-run fast path: one atomic publish and one atomic acquire per
// 64 messages.
func BenchmarkFabricBatchPublishDrain(b *testing.B) {
	p := newPipe()
	b.ReportAllocs()
	nop := func(Message) {}
	for n := 0; n < b.N; n += chunkSize {
		for i := 0; i < chunkSize; i++ {
			p.push(Message{T: sim.Time(n + i), Kind: KindSync})
		}
		p.flush()
		if k, _ := p.drain(nop); k != chunkSize {
			b.Fatalf("drained %d, want %d", k, chunkSize)
		}
	}
}

// BenchmarkFabricTryRecvAll measures the copying bulk drain with scratch
// reuse (the API consumers outside the runner hot path use).
func BenchmarkFabricTryRecvAll(b *testing.B) {
	p := newPipe()
	b.ReportAllocs()
	var scratch []Message
	const batch = 32
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			p.push(Message{T: sim.Time(n + i), Kind: KindSync})
		}
		p.flush()
		out, _ := p.tryRecvAll(scratch)
		if len(out) != batch {
			b.Fatalf("drained %d, want %d", len(out), batch)
		}
		clear(out)
		scratch = out
	}
}

// BenchmarkFabricStream pushes messages through the ring between two real
// goroutines, the consumer using blocking recv: the steady-state cost of a
// producer that stays ahead, including segment recycling and the parked
// gate on both edges of the stream.
func BenchmarkFabricStream(b *testing.B) {
	p := newPipe()
	b.ReportAllocs()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok, closed := p.recv(); !ok {
				if closed {
					return
				}
			}
		}
	}()
	const batch = 64
	for i := 0; i < b.N; i++ {
		p.push(Message{T: sim.Time(i), Kind: KindSync})
		if i%batch == batch-1 {
			p.flush()
		}
	}
	p.close()
	<-done
}

// BenchmarkFabricPingPong bounces one message between two goroutines
// through a pipe pair: the worst case for the wake gate — every message
// parks one side and wakes the other, nothing to batch.
func BenchmarkFabricPingPong(b *testing.B) {
	ab, ba := newPipe(), newPipe()
	b.ReportAllocs()
	go func() {
		for {
			m, ok, _ := ab.recv()
			if !ok {
				ba.close()
				return
			}
			ba.send(m)
		}
	}()
	for i := 0; i < b.N; i++ {
		ab.send(Message{T: sim.Time(i), Kind: KindSync})
		if _, ok, _ := ba.recv(); !ok {
			b.Fatal("echo lost")
		}
	}
	ab.close()
}
