package link

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// calRounds is the number of sync exchanges MeasureSyncCost times. Large
// enough to amortize goroutine start-up and clock quantization, small
// enough that calibration costs about a millisecond.
const calRounds = 4096

// MeasureSyncCost wall-clock-times a pure synchronization ping-pong between
// two coupled runners on this machine's actual channel fabric and returns
// the measured host nanoseconds per sync message sent. The two runners
// carry no components, so every message exchanged is a sync and the result
// isolates the fabric's per-quantum price — publish, wake, drain, horizon
// update — as it really is on this host, spin/park discipline included.
//
// The decomposition model's calibrated SyncCostNs constant stands in for
// this number when reproducing the paper's figures; placement decisions for
// a run on *this* machine should prefer the measured value
// (decomp.HostParams, orch.HostModelParams). Returns 0 when the
// measurement is degenerate (clock too coarse to observe the run); callers
// treat 0 as "keep the calibrated default".
func MeasureSyncCost() float64 {
	const latency = sim.Microsecond
	ch := NewChannel("calibrate", latency, 0)
	g := &Group{}
	ra := NewRunner("cal.a", sim.NewScheduler(1))
	rb := NewRunner("cal.b", sim.NewScheduler(2))
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())
	g.Add(ra, rb)

	start := time.Now()
	if err := g.Run(calRounds * latency); err != nil {
		return 0
	}
	wall := float64(time.Since(start).Nanoseconds())
	syncs := ch.SideA().Stats.TxSync + ch.SideB().Stats.TxSync
	if syncs == 0 || wall <= 0 {
		return 0
	}
	return wall / float64(syncs)
}

var (
	measuredOnce sync.Once
	measuredCost float64
)

// MeasuredSyncCost returns MeasureSyncCost's result, measured once per
// process and cached. The fabric price does not drift within a run, but a
// fresh ping-pong costs about a millisecond — too much to pay on every
// placement decision or plan rendering, which is where this number is
// consumed (orch.HostModelParams, plan output).
func MeasuredSyncCost() float64 {
	measuredOnce.Do(func() { measuredCost = MeasureSyncCost() })
	return measuredCost
}
