package link

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The benchmarks here pin the coupled-run message-drain hot path: a runner
// consuming already-queued messages from a peer. Results are recorded as the
// perf baseline in BENCH_link.json (see scripts/bench.sh); every change to
// the pipe/runner/channel fabric should be measured against them.

const benchBatch = 64

type nopPayload struct{}

func (nopPayload) Size() int { return 0 }

// benchConsumer wires one channel whose B side is attached to a runner and
// whose A side's pipe is written directly (bypassing endpoint bookkeeping)
// so the producer adds no measurable cost.
func benchConsumer() (r *Runner, feed *pipe, recv *Endpoint) {
	ch := NewChannel("bench", sim.Microsecond, 0)
	r = NewRunner("consumer", sim.NewScheduler(1))
	r.Attach(ch.SideB())
	ch.SideB().SetSink(0, 7, core.SinkFunc(func(sim.Time, core.Message) {}))
	// SideA's outgoing pipe is SideB's incoming pipe.
	return r, ch.SideA().out, ch.SideB()
}

// BenchmarkDrainSync measures drainAll over pure synchronization messages:
// the per-message fabric overhead (pipe locking, wall-clock sampling,
// timestamp bookkeeping) with no payload handling at all. ns/op is per
// message.
func BenchmarkDrainSync(b *testing.B) {
	r, feed, _ := benchConsumer()
	var t sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += benchBatch {
		for i := 0; i < benchBatch; i++ {
			t += sim.Nanosecond
			feed.send(Message{T: t, Kind: KindSync})
		}
		r.drainAll()
	}
}

// BenchmarkDrainData measures drainAll over data messages plus the delivery
// events they schedule: the full receive path a coupled run pays per
// payload message (pipe, counters, scheduler insert, event dispatch).
// ns/op is per message.
func BenchmarkDrainData(b *testing.B) {
	r, feed, _ := benchConsumer()
	var t sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += benchBatch {
		for i := 0; i < benchBatch; i++ {
			t += sim.Nanosecond
			feed.send(Message{T: t, Kind: KindData, Sub: 0, Payload: nopPayload{}})
		}
		r.drainAll()
		// Execute the scheduled deliveries so the event queue stays small.
		r.sched.RunUntil(t + sim.Microsecond)
	}
}

// BenchmarkPipeSendTryRecv measures the raw pipe round trip without any
// endpoint handling: send a burst, then dequeue it one message at a time.
// ns/op is per message.
func BenchmarkPipeSendTryRecv(b *testing.B) {
	p := newPipe()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += benchBatch {
		for i := 0; i < benchBatch; i++ {
			p.send(Message{T: sim.Time(n + i), Kind: KindSync})
		}
		for {
			_, ok, _ := p.tryRecv()
			if !ok {
				break
			}
		}
	}
}

// BenchmarkCoupledPingPong runs a complete two-runner coupled simulation:
// each delivery immediately sends the token back, so the run is dominated
// by fabric overhead (sync emission, horizon math, blocking). ns/op is per
// simulated virtual millisecond of the two-runner system.
func BenchmarkCoupledPingPong(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch := NewChannel("pp", 500*sim.Nanosecond, 0)
		ra := NewRunner("a", sim.NewScheduler(1))
		rb := NewRunner("b", sim.NewScheduler(2))
		ra.Attach(ch.SideA())
		rb.Attach(ch.SideB())
		ch.SideA().SetSink(0, 10, core.SinkFunc(func(at sim.Time, m core.Message) {
			ch.SideA().Send(m)
		}))
		ch.SideB().SetSink(0, 20, core.SinkFunc(func(at sim.Time, m core.Message) {
			ch.SideB().Send(m)
		}))
		ra.AddComponent(&benchSeeder{port: ch.SideA()}, 5)
		g := &Group{}
		g.Add(ra, rb)
		if err := g.Run(sim.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

type benchSeeder struct {
	env  core.Env
	port core.Port
}

func (s *benchSeeder) Name() string        { return "seed" }
func (s *benchSeeder) Attach(env core.Env) { s.env = env }
func (s *benchSeeder) Start(end sim.Time) {
	s.env.At(0, func() { s.port.Send(nopPayload{}) })
}
