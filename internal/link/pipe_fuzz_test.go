package link

import (
	"testing"

	"repro/internal/sim"
)

// FuzzPipe drives one pipe through an arbitrary operation sequence decoded
// from the fuzz input and checks it against a trivial model: a slice plus a
// published-watermark and a closed flag. Every consumer path (tryRecv,
// tryRecvAll, drain, recv on a closed pipe) must observe exactly the
// published prefix of the pushed sequence, in order.
func FuzzPipe(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3, 4, 0, 1, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 4, 4, 4, 4})
	f.Add([]byte{2, 3, 5, 2, 3, 0, 2, 1, 3, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		p := newPipe()
		var model []sim.Time // pushed, in order
		published := 0       // prefix of model visible to the consumer
		read := 0            // prefix already consumed
		closed := false
		next := sim.Time(0)

		expect := func(m Message, ctx string) {
			if read >= published {
				t.Fatalf("%s returned a message beyond the published prefix", ctx)
			}
			if m.T != model[read] {
				t.Fatalf("%s: got T=%v want %v at position %d", ctx, m.T, model[read], read)
			}
			read++
		}

		for _, op := range ops {
			switch op % 6 {
			case 0: // push
				if closed {
					continue // send on closed panics by contract; not modeled
				}
				p.push(Message{T: next, Kind: KindSync})
				model = append(model, next)
				next++
			case 1: // flush (a no-op after close: close already published)
				p.flush()
				published = len(model)
			case 2: // tryRecv
				m, ok, cl := p.tryRecv()
				if ok {
					expect(m, "tryRecv")
				} else if read < published {
					t.Fatalf("tryRecv empty with %d published messages pending", published-read)
				} else if cl != (closed && read == len(model)) {
					t.Fatalf("tryRecv closed=%v, want %v", cl, closed && read == len(model))
				}
			case 3: // tryRecvAll
				batch, cl := p.tryRecvAll(nil)
				for _, m := range batch {
					expect(m, "tryRecvAll")
				}
				if len(batch) == 0 && read < published {
					t.Fatal("tryRecvAll empty with published messages pending")
				}
				if cl != (len(batch) == 0 && closed && read == len(model)) {
					t.Fatalf("tryRecvAll closed=%v unexpectedly", cl)
				}
			case 4: // drain
				n, cl := p.drain(func(m Message) { expect(m, "drain") })
				if n == 0 && read < published {
					t.Fatal("drain consumed nothing with published messages pending")
				}
				if cl != (n == 0 && closed && read == len(model)) {
					t.Fatalf("drain closed=%v unexpectedly", cl)
				}
			case 5: // close (publishes everything staged)
				if !closed {
					p.close()
					closed = true
					published = len(model)
				}
			}
			if got, want := p.len(), published-read; got != want {
				t.Fatalf("len=%d, want %d (published=%d read=%d)", got, want, published, read)
			}
		}

		// Drain to end-of-stream (or emptiness) and verify nothing is lost.
		p.close()
		published = len(model)
		for {
			m, ok, cl := p.recv()
			if !ok {
				if !cl {
					t.Fatal("recv !ok without closed on a closed pipe")
				}
				break
			}
			expect(m, "final recv")
		}
		if read != len(model) {
			t.Fatalf("consumed %d of %d pushed messages", read, len(model))
		}
	})
}
