// Package link implements SplitSim channels: the message-passing and
// synchronization fabric that couples component simulators running as
// parallel goroutines.
//
// The synchronization protocol is SimBricks': each side of a channel stamps
// every outgoing message (data or sync) with its current virtual time, and a
// receiver may only advance its own clock to lastReceivedTimestamp + channel
// latency. Because a channel's messages are FIFO with monotone timestamps,
// a component never sees a message "from the past", and the whole coupled
// simulation is deterministic — bit-identical to sequential execution of the
// same components (package orch verifies this property in its tests).
//
// The paper runs each component simulator as an OS process and carries
// channels over lock-free shared-memory queues. Coupling external C++
// simulators that way is not reproducible in offline pure Go, so components
// here are goroutines and channels are unbounded in-process queues; the
// protocol, message vocabulary, and timing semantics are unchanged (see
// DESIGN.md, substitution table).
package link

import "sync"

// pipe is an unbounded, closable FIFO queue carrying Messages from one
// goroutine to another. Unboundedness matters: with bounded queues, two
// components that both fill their outgoing queue while not draining incoming
// ones can deadlock; SimBricks sizes its shared-memory rings generously for
// the same reason.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Message
	head   int
	closed bool
	intr   bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// send enqueues m. Sending on a closed pipe panics (a protocol bug).
func (p *pipe) send(m Message) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("link: send on closed pipe")
	}
	p.buf = append(p.buf, m)
	p.mu.Unlock()
	p.cond.Signal()
}

// tryRecv dequeues without blocking. ok is false when the pipe is empty;
// closed additionally reports that no message will ever arrive again.
func (p *pipe) tryRecv() (m Message, ok, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

// tryRecvAll dequeues every queued message in one critical section by
// swapping the internal buffer with scratch (the batch a previous call
// returned, cleared and resliced to zero length). The returned batch is
// owned by the caller until it hands the slice back as scratch; closed
// reports — only when the batch is empty — that no message will ever
// arrive again. This is the coupled-run drain path: one lock acquisition
// per batch instead of one per message.
func (p *pipe) tryRecvAll(scratch []Message) (batch []Message, closed bool) {
	p.mu.Lock()
	if p.head == len(p.buf) {
		closed = p.closed
		p.mu.Unlock()
		return scratch[:0], closed
	}
	batch = p.buf[p.head:]
	p.buf = scratch[:0]
	p.head = 0
	p.mu.Unlock()
	return batch, false
}

// recv dequeues, blocking until a message arrives or the pipe is closed and
// drained.
func (p *pipe) recv() (m Message, ok, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		m, ok, closed = p.popLocked()
		if ok || closed {
			return m, ok, closed
		}
		p.cond.Wait()
	}
}

func (p *pipe) popLocked() (Message, bool, bool) {
	if p.head < len(p.buf) {
		m := p.buf[p.head]
		p.buf[p.head] = Message{}
		p.head++
		switch {
		case p.head == len(p.buf):
			p.buf = p.buf[:0]
			p.head = 0
		case p.head > 64 && p.head > len(p.buf)/2:
			// Compact: copy the live tail to the front so the consumed
			// prefix is reclaimed even when the producer stays ahead and
			// the queue never fully drains. Each message moves at most
			// once per halving, so the cost amortizes to O(1) per pop and
			// the buffer stays O(queue depth).
			n := copy(p.buf, p.buf[p.head:])
			tail := p.buf[n:]
			for i := range tail {
				tail[i] = Message{}
			}
			p.buf = p.buf[:n]
			p.head = 0
		}
		return m, true, false
	}
	return Message{}, false, p.closed
}

// interrupt permanently wakes receivers blocked in recvInterruptible. The
// flag is sticky: once set, recvInterruptible never blocks again, though it
// still drains messages already queued. The transport layer uses this to
// cancel its pump goroutine, which blocks here on a pipe — not on the
// network connection — and so is not unblocked by closing the socket.
func (p *pipe) interrupt() {
	p.mu.Lock()
	p.intr = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// recvInterruptible behaves like recv but additionally returns intr=true
// (with ok=false, closed=false) once interrupt was called and no queued
// message remains.
func (p *pipe) recvInterruptible() (m Message, ok, closed, intr bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		m, ok, closed = p.popLocked()
		if ok || closed {
			return m, ok, closed, false
		}
		if p.intr {
			return Message{}, false, false, true
		}
		p.cond.Wait()
	}
}

// close marks the pipe as finished; blocked receivers wake up.
func (p *pipe) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// len reports the number of queued messages.
func (p *pipe) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf) - p.head
}
