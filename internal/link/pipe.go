// Package link implements SplitSim channels: the message-passing and
// synchronization fabric that couples component simulators running as
// parallel goroutines.
//
// The synchronization protocol is SimBricks': each side of a channel stamps
// every outgoing message (data or sync) with its current virtual time, and a
// receiver may only advance its own clock to lastReceivedTimestamp + channel
// latency. Because a channel's messages are FIFO with monotone timestamps,
// a component never sees a message "from the past", and the whole coupled
// simulation is deterministic — bit-identical to sequential execution of the
// same components (package orch verifies this property in its tests).
//
// The paper runs each component simulator as an OS process and carries
// channels over lock-free shared-memory queues. Coupling external C++
// simulators that way is not reproducible in offline pure Go, so components
// here are goroutines and channels are unbounded in-process queues; the
// protocol, message vocabulary, and timing semantics are unchanged (see
// DESIGN.md, substitution table).
package link

import "sync"

// pipe is an unbounded, closable FIFO queue carrying Messages from one
// goroutine to another. Unboundedness matters: with bounded queues, two
// components that both fill their outgoing queue while not draining incoming
// ones can deadlock; SimBricks sizes its shared-memory rings generously for
// the same reason.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Message
	head   int
	closed bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// send enqueues m. Sending on a closed pipe panics (a protocol bug).
func (p *pipe) send(m Message) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("link: send on closed pipe")
	}
	p.buf = append(p.buf, m)
	p.mu.Unlock()
	p.cond.Signal()
}

// tryRecv dequeues without blocking. ok is false when the pipe is empty;
// closed additionally reports that no message will ever arrive again.
func (p *pipe) tryRecv() (m Message, ok, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

// recv dequeues, blocking until a message arrives or the pipe is closed and
// drained.
func (p *pipe) recv() (m Message, ok, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		m, ok, closed = p.popLocked()
		if ok || closed {
			return m, ok, closed
		}
		p.cond.Wait()
	}
}

func (p *pipe) popLocked() (Message, bool, bool) {
	if p.head < len(p.buf) {
		m := p.buf[p.head]
		p.buf[p.head] = Message{}
		p.head++
		if p.head == len(p.buf) && p.head > 64 {
			p.buf = p.buf[:0]
			p.head = 0
		}
		return m, true, false
	}
	return Message{}, false, p.closed
}

// close marks the pipe as finished; blocked receivers wake up.
func (p *pipe) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// len reports the number of queued messages.
func (p *pipe) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf) - p.head
}
