// Package link implements SplitSim channels: the message-passing and
// synchronization fabric that couples component simulators running as
// parallel goroutines.
//
// The synchronization protocol is SimBricks': each side of a channel stamps
// every outgoing message (data or sync) with its current virtual time, and a
// receiver may only advance its own clock to lastReceivedTimestamp + channel
// latency. Because a channel's messages are FIFO with monotone timestamps,
// a component never sees a message "from the past", and the whole coupled
// simulation is deterministic — bit-identical to sequential execution of the
// same components (package orch verifies this property in its tests).
//
// The paper runs each component simulator as an OS process and carries
// channels over lock-free shared-memory SPSC queues. Coupling external C++
// simulators that way is not reproducible in offline pure Go, so components
// here are goroutines and channels are lock-free single-producer/single-
// consumer segmented rings between them (mirroring the SimBricks queues);
// the protocol, message vocabulary, and timing semantics are unchanged (see
// DESIGN.md, substitution table).
package link

import (
	"runtime"
	"sync/atomic"
)

// Chunk geometry: messages live in fixed-size segments chained by an atomic
// next pointer, so the queue is unbounded (bounded queues can deadlock two
// components that both fill their outgoing queue while not draining incoming
// ones; SimBricks sizes its shm rings generously for the same reason) while
// each segment's slots are plain contiguous memory.
const (
	chunkShift = 6
	chunkSize  = 1 << chunkShift // messages per segment
	chunkMask  = chunkSize - 1
)

type chunk struct {
	next atomic.Pointer[chunk]
	msgs [chunkSize]Message
}

// pipe is an unbounded, closable FIFO queue carrying Messages from exactly
// one producing goroutine to exactly one consuming goroutine, with no lock
// on either path.
//
// Layout: message i lives in segment i>>chunkShift at slot i&chunkMask. The
// producer owns the tail segment and a staged-write counter; publication is
// a single atomic store of `tail` (the count of visible messages), so N
// staged sends become visible to the consumer in one publish. The consumer
// owns the head segment and its consumed counter, republished through the
// atomic `head` for depth accounting. Fully consumed segments are recycled
// to the producer through the `spare` slot, so steady-state traffic
// allocates nothing.
//
// The consumer parks on a futex-like gate only when truly idle: it declares
// itself parked, re-checks for work (the Dekker handshake with the
// producer's publish — both sides' atomics are sequentially consistent, so
// one of them always observes the other), and only then blocks on the wake
// channel. Producers skip the gate entirely unless the parked flag is set,
// so the publish fast path is one atomic store plus one atomic load.
type pipe struct {
	// Producer-owned: only the producing goroutine touches these.
	written   uint64 // messages staged (written to slots, maybe unpublished)
	published uint64 // producer-local mirror of tail
	headCache uint64 // stale lower bound on head (head only advances)
	peakLocal uint64 // producer-local mirror of peak
	prodChunk *chunk
	_         [2]uint64 // keep producer fields off the consumer's cache lines

	// Consumer-owned.
	consumed  uint64 // messages consumed
	tailCache uint64 // consumer-local snapshot of tail
	consChunk *chunk
	_         [4]uint64

	// Shared. tail/peak are producer-written, head consumer-written;
	// closed/intr/parked/spare/wake are the control plane.
	tail atomic.Uint64 // published message count
	_    [7]uint64
	head atomic.Uint64 // consumed message count
	_    [7]uint64
	peak   atomic.Uint64 // max (written - head) observed at publish
	closed atomic.Bool
	intr   atomic.Bool
	parked atomic.Int32
	spare  atomic.Pointer[chunk] // one recycled segment, consumer → producer
	wake   chan struct{}         // cap-1 binary semaphore for the parked gate

	chunkAllocs atomic.Uint64 // segments ever allocated (tests/diagnostics)
}

func newPipe() *pipe {
	c := new(chunk)
	p := &pipe{prodChunk: c, consChunk: c, wake: make(chan struct{}, 1)}
	p.chunkAllocs.Store(1)
	return p
}

// push stages m without publishing it: the consumer cannot see it until the
// next flush — unless the consumer is parked, in which case push publishes
// immediately. Batching pays when the consumer has work to overlap with;
// a parked consumer is starved, and holding messages back from it only
// converts producer batching into consumer idle time. Pushing on a closed
// pipe panics (a protocol bug). Producer side only.
func (p *pipe) push(m Message) {
	if p.closed.Load() {
		panic("link: send on closed pipe")
	}
	c := p.prodChunk
	idx := int(p.written & chunkMask)
	c.msgs[idx] = m
	p.written++
	if idx == chunkMask {
		// Segment full: chain a fresh one (recycled if the consumer has
		// handed one back) before any slot in it is written.
		nc := p.spare.Swap(nil)
		if nc == nil {
			nc = new(chunk)
			p.chunkAllocs.Add(1)
		}
		c.next.Store(nc)
		p.prodChunk = nc
	}
	if p.parked.Load() != 0 {
		p.flush()
	}
}

// flush publishes every staged message in one atomic store and wakes the
// consumer if it is parked. A no-op when nothing is staged. Producer side
// only.
func (p *pipe) flush() {
	if p.written == p.published {
		return
	}
	p.published = p.written
	p.tail.Store(p.written)
	// Peak-depth tracking against a stale head: head only ever advances, so
	// written-headCache is an upper bound on the true depth, and a publish
	// that does not beat the current peak even by that bound cannot set a
	// record — the common case costs no atomic traffic at all.
	if p.written-p.headCache > p.peakLocal {
		p.headCache = p.head.Load()
		if d := p.written - p.headCache; d > p.peakLocal {
			p.peakLocal = d
			p.peak.Store(d)
		}
	}
	if p.parked.Load() != 0 {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// send enqueues m with immediate publication (push + flush).
func (p *pipe) send(m Message) {
	p.push(m)
	p.flush()
}

// pop dequeues one message without blocking. Consumer side only.
func (p *pipe) pop() (Message, bool) {
	if p.consumed >= p.tailCache {
		p.tailCache = p.tail.Load()
		if p.consumed >= p.tailCache {
			return Message{}, false
		}
	}
	c := p.consChunk
	idx := int(p.consumed & chunkMask)
	m := c.msgs[idx]
	c.msgs[idx] = Message{}
	p.consumed++
	p.head.Store(p.consumed)
	if idx == chunkMask {
		p.advanceChunk(c)
	}
	return m, true
}

// advanceChunk moves the consumer to the next segment after fully consuming
// c, and recycles c to the producer. The next pointer is always visible
// here: tail covered a message past the end of c, and the producer linked
// the next segment before publishing any message in it.
func (p *pipe) advanceChunk(c *chunk) {
	next := c.next.Load()
	if next == nil {
		panic("link: pipe segment chain broken (concurrent consumers?)")
	}
	p.consChunk = next
	c.next.Store(nil)
	p.spare.Store(c)
}

// tryRecv dequeues without blocking. ok is false when the pipe is empty;
// closed additionally reports that no message will ever arrive again.
func (p *pipe) tryRecv() (m Message, ok, closed bool) {
	if m, ok := p.pop(); ok {
		return m, true, false
	}
	if p.closed.Load() {
		// close happens after the final publish, so seeing closed means the
		// final tail is visible: one re-pop drains a racing last message.
		if m, ok := p.pop(); ok {
			return m, true, false
		}
		return Message{}, false, true
	}
	return Message{}, false, false
}

// tryRecvAll dequeues every published message in bulk, appending into
// scratch (the batch a previous call returned, cleared by the caller). The
// returned batch is owned by the caller until it hands the slice back as
// scratch; closed reports — only when the batch is empty — that no message
// will ever arrive again. This is the coupled-run drain path: one atomic
// load and a few segment memcpys per batch instead of synchronization per
// message.
func (p *pipe) tryRecvAll(scratch []Message) (batch []Message, closed bool) {
	batch = scratch[:0]
	avail := p.tail.Load() - p.consumed
	if avail == 0 {
		if !p.closed.Load() {
			return batch, false
		}
		avail = p.tail.Load() - p.consumed // final publish precedes close
		if avail == 0 {
			return batch, true
		}
	}
	for avail > 0 {
		c := p.consChunk
		idx := int(p.consumed & chunkMask)
		n := chunkSize - idx
		if uint64(n) > avail {
			n = int(avail)
		}
		batch = append(batch, c.msgs[idx:idx+n]...)
		clear(c.msgs[idx : idx+n])
		p.consumed += uint64(n)
		avail -= uint64(n)
		if p.consumed&chunkMask == 0 {
			p.advanceChunk(c)
		}
	}
	p.tailCache = p.consumed
	p.head.Store(p.consumed)
	return batch, false
}

// empty reports whether no published message is pending. Consumer side
// only: it compares against the consumer's own position.
func (p *pipe) empty() bool {
	return p.tail.Load() == p.consumed
}

// drain consumes every published message in place, invoking fn on each
// straight out of its ring slot — the coupled-run drain path, like
// tryRecvAll but without copying the batch out of the ring first. n
// reports how many messages were consumed; closed reports — only when n
// is 0 — that no message will ever arrive again. Consumer side only; fn
// must not touch this pipe's consumer side.
func (p *pipe) drain(fn func(Message)) (n int, closed bool) {
	avail := p.tail.Load() - p.consumed
	if avail == 0 {
		if !p.closed.Load() {
			return 0, false
		}
		avail = p.tail.Load() - p.consumed // final publish precedes close
		if avail == 0 {
			return 0, true
		}
	}
	for avail > 0 {
		c := p.consChunk
		idx := int(p.consumed & chunkMask)
		seg := chunkSize - idx
		if uint64(seg) > avail {
			seg = int(avail)
		}
		for i := idx; i < idx+seg; i++ {
			m := c.msgs[i]
			c.msgs[i] = Message{}
			fn(m)
		}
		p.consumed += uint64(seg)
		avail -= uint64(seg)
		n += seg
		if p.consumed&chunkMask == 0 {
			p.advanceChunk(c)
		}
	}
	p.tailCache = p.consumed
	p.head.Store(p.consumed)
	return n, false
}

// Adaptive spin-then-park budgets. The consumer's blocking strategy depends
// on whether the producer can be executing at this very instant:
//
//   - GOMAXPROCS == 1: it cannot. The producer runs *because* we yield, so
//     busy-spinning without yielding is pure waste; the right move is a
//     bounded Gosched loop (each yield is a chance for the producer to run
//     and publish) and then a real park.
//   - GOMAXPROCS > 1: the producer may be mid-publish on another core, a
//     handful of nanoseconds away. A short hot spin re-checking the
//     published tail picks the message up without surrendering the core,
//     where an immediate park would pay a sleep/wake round trip through the
//     wake gate (microseconds) for a message that was almost there. A few
//     yields after the spin cover the oversubscribed case (more runners
//     than cores) before parking for real.
//
// The budgets are consulted per blocking episode, not cached at init:
// GOMAXPROCS legitimately changes at runtime (tests sweep it; deployments
// resize), and a budget tuned for the wrong mode is exactly the single-core
// assumption this replaces.
const (
	singleCoreYields = 64  // legacy yield budget: peer runs only when we yield
	multiCoreSpins   = 256 // hot tail re-checks while the peer may be publishing
	multiCoreYields  = 8   // then brief yields for oversubscription, then park
)

// spinParams returns the (spin, yield) budget for the current processor
// count.
func spinParams(procs int) (spins, yields int) {
	if procs <= 1 {
		return 0, singleCoreYields
	}
	return multiCoreSpins, multiCoreYields
}

// recvAdaptive dequeues, blocking until a message arrives or the pipe is
// closed and drained — like recv, but with the spin-then-park discipline
// above instead of parking on first emptiness. Consumer side only.
func (p *pipe) recvAdaptive() (m Message, ok, closed bool) {
	spins, yields := spinParams(runtime.GOMAXPROCS(0))
	for i := 0; ; i++ {
		if m, ok := p.pop(); ok {
			return m, true, false
		}
		if p.closed.Load() {
			if m, ok := p.pop(); ok {
				return m, true, false
			}
			return Message{}, false, true
		}
		switch {
		case i < spins:
			// Hot spin: pop reloads the published tail each pass, so a
			// concurrent publish is observed without any scheduler traffic.
		case i < spins+yields:
			runtime.Gosched()
		default:
			p.park(false)
		}
	}
}

// park blocks the consumer until a producer-side event (publish, close,
// interrupt) wakes it. The parked flag plus the post-flag re-check make the
// gate lost-wakeup-free; a leftover token only costs one spurious loop in
// the caller.
func (p *pipe) park(interruptible bool) {
	p.parked.Store(1)
	if p.tail.Load() != p.consumed || p.closed.Load() ||
		(interruptible && p.intr.Load()) {
		p.parked.Store(0)
		return
	}
	<-p.wake
	p.parked.Store(0)
}

// recv dequeues, blocking until a message arrives or the pipe is closed and
// drained.
func (p *pipe) recv() (m Message, ok, closed bool) {
	for {
		if m, ok := p.pop(); ok {
			return m, true, false
		}
		if p.closed.Load() {
			if m, ok := p.pop(); ok {
				return m, true, false
			}
			return Message{}, false, true
		}
		p.park(false)
	}
}

// interrupt permanently wakes receivers blocked in recvInterruptible. The
// flag is sticky: once set, recvInterruptible never blocks again, though it
// still drains messages already queued. The transport layer uses this to
// cancel its pump goroutine, which blocks here on a pipe — not on the
// network connection — and so is not unblocked by closing the socket. Safe
// to call from any goroutine, concurrently with both ends.
func (p *pipe) interrupt() {
	p.intr.Store(true)
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// recvInterruptible behaves like recv but additionally returns intr=true
// (with ok=false, closed=false) once interrupt was called and no queued
// message remains.
func (p *pipe) recvInterruptible() (m Message, ok, closed, intr bool) {
	for {
		if m, ok := p.pop(); ok {
			return m, true, false, false
		}
		if p.closed.Load() {
			if m, ok := p.pop(); ok {
				return m, true, false, false
			}
			return Message{}, false, true, false
		}
		if p.intr.Load() {
			return Message{}, false, false, true
		}
		p.park(true)
	}
}

// close publishes anything still staged, marks the pipe as finished, and
// wakes a blocked receiver. Idempotent; producer side only.
func (p *pipe) close() {
	p.flush()
	p.closed.Store(true)
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// len reports the number of published, unconsumed messages. Staged-but-
// unflushed messages are not counted: they are not yet visible to the
// consumer.
func (p *pipe) len() int {
	return int(p.tail.Load() - p.head.Load())
}

// peakDepth reports the maximum queue depth ever observed at publication
// time (staged writes included). Safe from any goroutine.
func (p *pipe) peakDepth() uint64 { return p.peak.Load() }
