package link

import "repro/internal/sim"

// NewHalf creates a channel endpoint whose peer lives in another OS
// process: the local side is a normal Endpoint a Runner attaches to, and
// the Remote handle is what a proxy (package proxy) pumps to and from the
// transport. This is the SimBricks proxy mechanism the paper inherits for
// scaling out across machines.
//
// Synchronization semantics are unchanged: the remote peer's messages
// (data and sync) carry its virtual timestamps, and the local runner may
// not advance past lastRemoteTimestamp + latency. The transport only has
// to preserve order; wall-clock network delay costs wall time, never
// simulated time.
func NewHalf(name string, latency, syncInterval sim.Time) (*Endpoint, *Remote) {
	c := NewChannel(name, latency, syncInterval)
	// The local runner owns side A. Side B's pipes are driven by the
	// Remote: what A sent shows up in remote.Recv, and remote.Inject
	// feeds A's inbox.
	r := &Remote{
		fromLocal: c.a.out,
		toLocal:   c.b.out,
	}
	return c.a, r
}

// Remote is the transport-facing half of a spliced channel.
type Remote struct {
	fromLocal *pipe // messages the local endpoint sent
	toLocal   *pipe // inbox of the local endpoint
}

// Recv blocks for the next message produced by the local endpoint
// (data or sync). ok is false once the local side finished and drained.
func (r *Remote) Recv() (Message, bool) {
	m, ok, _ := r.fromLocal.recv()
	return m, ok
}

// TryRecv is the non-blocking variant.
func (r *Remote) TryRecv() (m Message, ok, closed bool) {
	return r.fromLocal.tryRecv()
}

// RecvInterruptible blocks like Recv but additionally returns intr=true
// once Interrupt was called and every queued message has been drained.
// ok=false with intr=false still means the local side finished cleanly.
// Transport pumps use this so their outbound goroutine — blocked on the
// pipe, not the socket — can be cancelled without leaking.
func (r *Remote) RecvInterruptible() (m Message, ok, intr bool) {
	m, ok, _, intr = r.fromLocal.recvInterruptible()
	return m, ok, intr
}

// Interrupt permanently wakes any receiver blocked in RecvInterruptible.
// It is idempotent and safe to call from any goroutine.
func (r *Remote) Interrupt() { r.fromLocal.interrupt() }

// Inject delivers a message from the remote peer to the local endpoint.
// Injecting after CloseToLocal is a protocol violation and panics; the
// transport's per-channel sequence resync exists to prevent exactly that.
func (r *Remote) Inject(m Message) { r.toLocal.send(m) }

// CloseToLocal signals that the remote peer finished (its final sync has
// been injected); the local runner treats the channel as drained. It is
// idempotent: a transport may call it again after a dirty disconnect that
// raced with a clean end of stream.
func (r *Remote) CloseToLocal() { r.toLocal.close() }
