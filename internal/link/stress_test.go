package link

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestManyRunnerRing runs a ring of runners passing tokens: a stress shape
// with cyclic dependencies, where conservative synchronization deadlocks if
// any progress rule is wrong.
func TestManyRunnerRing(t *testing.T) {
	const n = 12
	g := &Group{}
	runners := make([]*Runner, n)
	chans := make([]*Channel, n)
	for i := 0; i < n; i++ {
		runners[i] = NewRunner(fmt.Sprintf("r%d", i), sim.NewScheduler(int32(i+1)))
	}
	received := make([]int, n)
	for i := 0; i < n; i++ {
		chans[i] = NewChannel(fmt.Sprintf("c%d", i), 500*sim.Nanosecond, 0)
		runners[i].Attach(chans[i].SideA())       // i sends to i+1
		runners[(i+1)%n].Attach(chans[i].SideB()) // i+1 receives from i
	}
	for i := 0; i < n; i++ {
		i := i
		prev := chans[(i+n-1)%n].SideB() // messages from predecessor
		next := chans[i].SideA()         // toward successor
		prev.SetSink(0, int32(100+i), core.SinkFunc(func(at sim.Time, m core.Message) {
			received[i]++
			// Forward the token onward.
			next.Send(m)
		}))
		chans[i].SideA().SetSink(0, int32(200+i), core.SinkFunc(func(sim.Time, core.Message) {}))
		g.Add(runners[i])
	}
	// Seed one token from runner 0 at t=0.
	seed := &seeder{port: chans[0].SideA()}
	runners[0].AddComponent(seed, 50)

	if err := g.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Token circulates: 2ms / (n * 500ns) = ~333 laps.
	for i, r := range received {
		if r < 100 {
			t.Fatalf("node %d saw the token only %d times — ring stalled", i, r)
		}
	}
}

type seeder struct {
	env  core.Env
	port core.Port
}

func (s *seeder) Name() string        { return "seed" }
func (s *seeder) Attach(env core.Env) { s.env = env }
func (s *seeder) Start(end sim.Time) {
	s.env.At(0, func() { s.port.Send(testMsg{seq: 0, from: "seed"}) })
}

// TestEndpointLabels covers the introspection surface the profiler uses.
func TestEndpointLabels(t *testing.T) {
	ch := NewChannel("wire", sim.Microsecond, 0)
	ra := NewRunner("alpha", sim.NewScheduler(1))
	rb := NewRunner("beta", sim.NewScheduler(2))
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())
	if ch.SideA().Label() != "wire.a" || ch.SideB().Label() != "wire.b" {
		t.Fatal("labels")
	}
	if ch.SideA().PeerLabel() != "wire.b" {
		t.Fatal("peer label")
	}
	if ch.SideA().PeerRunnerName() != "beta" || ch.SideB().PeerRunnerName() != "alpha" {
		t.Fatal("peer runner names")
	}
	if ch.SideA().Channel() != ch || ch.SideA().Latency() != sim.Microsecond {
		t.Fatal("channel accessors")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	ch := NewChannel("x", sim.Microsecond, 0)
	ra := NewRunner("a", sim.NewScheduler(1))
	rb := NewRunner("b", sim.NewScheduler(2))
	ra.Attach(ch.SideA())
	defer func() {
		if recover() == nil {
			t.Fatal("double attach should panic")
		}
	}()
	rb.Attach(ch.SideA())
}

func TestRunnerWithoutEndpointsFinishes(t *testing.T) {
	r := NewRunner("solo", sim.NewScheduler(1))
	count := 0
	r.AddComponent(&ticker{n: &count}, 5)
	g := &Group{}
	g.Add(r)
	if err := g.Run(1 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("component never ran")
	}
}

type ticker struct {
	env core.Env
	n   *int
}

func (t *ticker) Name() string        { return "ticker" }
func (t *ticker) Attach(env core.Env) { t.env = env }
func (t *ticker) Start(end sim.Time) {
	var tick func()
	tick = func() {
		*t.n++
		t.env.After(100*sim.Microsecond, tick)
	}
	t.env.At(0, tick)
}
