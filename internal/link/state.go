package link

import (
	"repro/internal/sim"
)

// Checkpoint support for the channel fabric. A checkpoint happens only at a
// fully quiesced group run boundary (every runner joined), so none of this
// runs concurrently with the pipes' producers or consumers.

// SetStart records the virtual time a restored run resumes at, lifting the
// endpoint's pre-first-message horizon floor to start + latency and its
// sync-pacing floor to start + sync interval — both sides behave as if a
// sync at the start time had already been exchanged. Without the send-side
// floor a resumed unbatched run computes a sync cap of interval-from-zero,
// which sits below the restored clock: no runner ever qualifies to run a
// batch or emit a sync, and the group livelocks. Call on both endpoints of
// every channel before the restored run begins.
func (e *Endpoint) SetStart(t sim.Time) {
	e.start = t
	if e.lastSentT < t {
		e.lastSentT = t
	}
}

// DrainResidual consumes every message still sitting in the endpoint's
// incoming pipe through the normal handle path. When a group run ends at
// time T, each runner finishes (final sync at T, output closed) as soon as
// it reaches T, without draining peers' final messages — those are the
// residual. FIFO timestamp monotonicity plus the horizon invariant
// guarantee every residual data message delivers at or after T, so handling
// them from a scheduler sitting at T never schedules into the past.
func (e *Endpoint) DrainResidual() {
	for {
		m, ok, closed := e.in.tryRecv()
		if ok {
			e.handle(m)
			continue
		}
		if closed {
			e.peerDone = true
			if e.runner != nil {
				e.runner.horizonOK = false
			}
			return
		}
		return
	}
}

// Quiesced reports whether the incoming pipe is fully consumed. After a
// joined group run plus DrainResidual on every endpoint, every pipe must be
// quiesced: the outgoing direction is the peer's incoming one, so a full
// sweep over endpoints covers both directions of every channel.
func (e *Endpoint) Quiesced() bool { return e.in.empty() }

// SetTxData overwrites the endpoint's cumulative data-message counter; the
// checkpoint layer restores it so ModelGraph message counts carry across a
// restore. Only TxData round-trips: sync and wait counters describe the
// executor, not the simulation, and differ legitimately across placements.
func (e *Endpoint) SetTxData(n uint64) { e.Stats.TxData = n }

// restartable matches core.Stateful's restored-start method without
// importing core's full interface here.
type restartable interface {
	StartRestored(end sim.Time)
}

// SetRestored switches the runner's next Run into restored mode: components
// get StartRestored (adopt wiring, seed no events) instead of Start,
// because their initial events already ride in the checkpoint.
func (r *Runner) SetRestored(on bool) { r.restored = on }
