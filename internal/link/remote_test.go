package link

import (
	"testing"
	"time"
)

// TestPipeInterruptWakesBlockedReceiver is the cancellation contract the
// proxy transport relies on: a goroutine blocked in recvInterruptible must
// wake when interrupted, because nothing else (closing the socket included)
// unblocks a pipe wait.
func TestPipeInterruptWakesBlockedReceiver(t *testing.T) {
	p := newPipe()
	got := make(chan bool, 1)
	go func() {
		_, ok, closed, intr := p.recvInterruptible()
		got <- intr && !ok && !closed
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block
	p.interrupt()
	select {
	case v := <-got:
		if !v {
			t.Fatal("recvInterruptible returned, but not with intr=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interrupt did not wake the blocked receiver")
	}
}

// TestPipeInterruptIsStickyAndDrainsFirst: queued messages still come out
// after an interrupt; only an empty queue reports intr, and it keeps doing
// so (the flag never resets).
func TestPipeInterruptIsStickyAndDrainsFirst(t *testing.T) {
	p := newPipe()
	p.send(Message{T: 1})
	p.send(Message{T: 2})
	p.interrupt()
	for want := 1; want <= 2; want++ {
		m, ok, _, intr := p.recvInterruptible()
		if !ok || intr || int(m.T) != want {
			t.Fatalf("drain %d: got T=%v ok=%v intr=%v", want, m.T, ok, intr)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok, closed, intr := p.recvInterruptible(); !intr || ok || closed {
			t.Fatalf("call %d after drain: ok=%v closed=%v intr=%v", i, ok, closed, intr)
		}
	}
}

// TestRemoteInterrupt covers the exported surface: Interrupt unblocks
// RecvInterruptible, and a clean close still reports ok=false, intr=false.
func TestRemoteInterrupt(t *testing.T) {
	_, rem := NewHalf("x", 1, 0)
	done := make(chan bool, 1)
	go func() {
		_, ok, intr := rem.RecvInterruptible()
		done <- intr && !ok
	}()
	time.Sleep(10 * time.Millisecond)
	rem.Interrupt()
	select {
	case v := <-done:
		if !v {
			t.Fatal("RecvInterruptible returned without intr=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Remote.Interrupt did not unblock RecvInterruptible")
	}
	// CloseToLocal is idempotent.
	rem.CloseToLocal()
	rem.CloseToLocal()
}
