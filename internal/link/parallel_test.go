package link

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestSpinParams pins the GOMAXPROCS keying of the adaptive spin-then-park
// budget: one core must never busy-spin (the producer runs only when we
// yield), several cores must spin before yielding.
func TestSpinParams(t *testing.T) {
	for _, procs := range []int{0, 1} {
		if s, y := spinParams(procs); s != 0 || y != singleCoreYields {
			t.Errorf("spinParams(%d) = (%d, %d), want (0, %d)", procs, s, y, singleCoreYields)
		}
	}
	for _, procs := range []int{2, 4, 64} {
		if s, y := spinParams(procs); s != multiCoreSpins || y != multiCoreYields {
			t.Errorf("spinParams(%d) = (%d, %d), want (%d, %d)",
				procs, s, y, multiCoreSpins, multiCoreYields)
		}
	}
}

// TestParallelWakePromptness is the park/wake regression test for true
// concurrency: a consumer that has spun out its budget and parked must wake
// promptly when a producer on a different OS thread publishes. Before the
// adaptive budget, the fixed single-core yield loop was the only thing
// standing between tryRecv and a park — this test runs with GOMAXPROCS >= 2
// and a thread-locked producer so the park path genuinely races a
// concurrent publish.
func TestParallelWakePromptness(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	for round := 0; round < 8; round++ {
		p := newPipe()
		got := make(chan time.Time, 1)
		go func() {
			m, ok, _ := p.recvAdaptive()
			if !ok || m.T != 7 {
				got <- time.Time{}
				return
			}
			got <- time.Now()
		}()
		// Give the consumer time to burn its spin+yield budget and park.
		time.Sleep(10 * time.Millisecond)
		runtime.LockOSThread()
		sent := time.Now()
		p.send(Message{T: 7, Kind: KindSync})
		runtime.UnlockOSThread()
		select {
		case woke := <-got:
			if woke.IsZero() {
				t.Fatal("consumer returned without the message")
			}
			if d := woke.Sub(sent); d > 500*time.Millisecond {
				t.Fatalf("parked consumer took %v to wake", d)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked consumer never woke")
		}
	}
}

// TestRecvAdaptiveClosed checks the adaptive path's end-of-stream handling:
// staged messages drain first, then closed is reported.
func TestRecvAdaptiveClosed(t *testing.T) {
	p := newPipe()
	p.send(Message{T: 1, Kind: KindSync})
	p.close()
	if m, ok, closed := p.recvAdaptive(); !ok || closed || m.T != 1 {
		t.Fatalf("recvAdaptive = (%v, %v, %v), want message T=1", m, ok, closed)
	}
	if _, ok, closed := p.recvAdaptive(); ok || !closed {
		t.Fatal("recvAdaptive on drained closed pipe should report closed")
	}
}

// batchProbe builds two coupled runners joined by a channel whose sync
// interval is much finer than its latency, runs them, and returns the total
// sync messages sent.
func batchProbe(t *testing.T, batch bool, end sim.Time) uint64 {
	t.Helper()
	ch := NewChannel("probe", 8*sim.Microsecond, sim.Microsecond)
	ra := NewRunner("a", sim.NewScheduler(1))
	rb := NewRunner("b", sim.NewScheduler(2))
	ra.SetBatchWindows(batch)
	rb.SetBatchWindows(batch)
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())
	g := &Group{}
	g.Add(ra, rb)
	if err := g.Run(end); err != nil {
		t.Fatal(err)
	}
	return ch.SideA().Stats.TxSync + ch.SideB().Stats.TxSync
}

// TestBatchWindowsAmortizeSyncs pins the parallel executor's horizon
// batching: with a sync interval of latency/8, the batched discipline must
// exchange several times fewer sync messages over the same run — one
// exchange per lookahead window instead of one per interval.
func TestBatchWindowsAmortizeSyncs(t *testing.T) {
	const end = 2 * sim.Millisecond
	fine := batchProbe(t, false, end)
	batched := batchProbe(t, true, end)
	if fine == 0 || batched == 0 {
		t.Fatalf("degenerate sync counts: fine=%d batched=%d", fine, batched)
	}
	if batched*4 > fine {
		t.Fatalf("batched windows sent %d syncs vs %d unbatched; want >=4x reduction", batched, fine)
	}
}

// TestMeasureSyncCost sanity-checks the calibration probe: it must complete
// and price a sync exchange at something positive and sane.
func TestMeasureSyncCost(t *testing.T) {
	ns := MeasureSyncCost()
	if ns <= 0 {
		t.Fatal("MeasureSyncCost returned 0 — degenerate measurement")
	}
	if ns > 1e8 {
		t.Fatalf("MeasureSyncCost = %v ns/sync, implausibly slow", ns)
	}
}
