package pci

import (
	"testing"

	"repro/internal/core"
)

// The PCI vocabulary is plain data; what matters is that every message
// satisfies core.Message with a sensible size (the link layer accounts
// bytes moved between host and NIC simulators).

func TestMessageSizes(t *testing.T) {
	frame := make([]byte, 100)
	cases := []struct {
		m    core.Message
		want int
	}{
		{TxSubmit{ID: 1, Frame: frame}, 116},
		{TxDone{ID: 1}, 16},
		{RxPacket{Frame: frame}, 108},
		{PHCRead{ID: 1}, 8},
		{PHCValue{ID: 1}, 16},
	}
	for _, c := range cases {
		if got := c.m.Size(); got != c.want {
			t.Errorf("%T Size() = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestDefaultLatencyPositive(t *testing.T) {
	if DefaultLatency <= 0 {
		t.Fatal("PCI latency must be positive for conservative sync")
	}
}
