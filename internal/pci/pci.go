// Package pci defines the message vocabulary on the channel between a
// detailed host simulator and its NIC simulator — the analog of the
// SimBricks PCI channel. Frames cross as honest byte strings (the encoded
// Ethernet frames of package proto); control messages model doorbells,
// completions, and PTP hardware-clock reads.
package pci

import "repro/internal/sim"

// TxSubmit is a host-to-NIC transmit doorbell: the frame has been placed in
// a descriptor ring and is ready for DMA.
type TxSubmit struct {
	ID    uint64
	Frame []byte
	// Timestamp requests a hardware TX timestamp (PTP event messages).
	Timestamp bool
}

// Size implements core.Message.
func (m TxSubmit) Size() int { return 16 + len(m.Frame) }

// TxDone is a NIC-to-host transmit completion. HWTime carries the PTP
// hardware clock value at wire departure when requested.
type TxDone struct {
	ID     uint64
	HWTime sim.Time
}

// Size implements core.Message.
func (m TxDone) Size() int { return 16 }

// RxPacket is a NIC-to-host received frame, DMA'd into a host buffer.
// HWTime is the PTP hardware clock value at wire arrival.
type RxPacket struct {
	Frame  []byte
	HWTime sim.Time
}

// Size implements core.Message.
func (m RxPacket) Size() int { return 8 + len(m.Frame) }

// PHCRead is a host-to-NIC read of the PTP hardware clock register.
type PHCRead struct {
	ID uint64
}

// Size implements core.Message.
func (m PHCRead) Size() int { return 8 }

// PHCValue is the NIC's reply to a PHCRead.
type PHCValue struct {
	ID     uint64
	HWTime sim.Time
}

// Size implements core.Message.
func (m PHCValue) Size() int { return 16 }

// DefaultLatency is the PCI channel latency used throughout (the SimBricks
// default of 500 ns).
const DefaultLatency = 500 * sim.Nanosecond
