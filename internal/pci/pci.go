// Package pci defines the message vocabulary on the channel between a
// detailed host simulator and its NIC simulator — the analog of the
// SimBricks PCI channel. Frames cross as honest byte strings (the encoded
// Ethernet frames of package proto); control messages model doorbells,
// completions, and PTP hardware-clock reads.
package pci

import (
	"sync"

	"repro/internal/sim"
)

// TxSubmit is a host-to-NIC transmit doorbell: the frame has been placed in
// a descriptor ring and is ready for DMA.
type TxSubmit struct {
	ID    uint64
	Frame []byte
	// Timestamp requests a hardware TX timestamp (PTP event messages).
	Timestamp bool
}

// Size implements core.Message.
func (m TxSubmit) Size() int { return 16 + len(m.Frame) }

// TxDone is a NIC-to-host transmit completion. HWTime carries the PTP
// hardware clock value at wire departure when requested.
type TxDone struct {
	ID     uint64
	HWTime sim.Time
}

// Size implements core.Message.
func (m TxDone) Size() int { return 16 }

// RxPacket is a NIC-to-host received frame, DMA'd into a host buffer.
// HWTime is the PTP hardware clock value at wire arrival.
type RxPacket struct {
	Frame  []byte
	HWTime sim.Time
}

// Size implements core.Message.
func (m RxPacket) Size() int { return 8 + len(m.Frame) }

// PHCRead is a host-to-NIC read of the PTP hardware clock register.
type PHCRead struct {
	ID uint64
}

// Size implements core.Message.
func (m PHCRead) Size() int { return 8 }

// PHCValue is the NIC's reply to a PHCRead.
type PHCValue struct {
	ID     uint64
	HWTime sim.Time
}

// Size implements core.Message.
func (m PHCValue) Size() int { return 16 }

// DefaultLatency is the PCI channel latency used throughout (the SimBricks
// default of 500 ns).
const DefaultLatency = 500 * sim.Nanosecond

// TxBatch carries one or more TxSubmit descriptors in a single channel
// message — one doorbell write covering a ring's worth of descriptors.
// Batches are pooled: the receiver returns them with PutTxBatch after
// draining Subs. The pools below are sync.Pools (not per-component free
// lists) because the PCI channel crosses runner goroutines in coupled runs.
type TxBatch struct {
	Subs []TxSubmit
}

// Size implements core.Message.
func (b *TxBatch) Size() int {
	n := 0
	for i := range b.Subs {
		n += b.Subs[i].Size()
	}
	return n
}

// Count implements link.MultiMessage: a batch occupies one event but counts
// as len(Subs) messages for channel accounting.
func (b *TxBatch) Count() int { return len(b.Subs) }

var txBatchPool = sync.Pool{New: func() interface{} { return new(TxBatch) }}

// GetTxBatch returns an empty pooled batch.
func GetTxBatch() *TxBatch { return txBatchPool.Get().(*TxBatch) }

// PutTxBatch recycles a drained batch, dropping frame references.
func PutTxBatch(b *TxBatch) {
	for i := range b.Subs {
		b.Subs[i] = TxSubmit{}
	}
	b.Subs = b.Subs[:0]
	txBatchPool.Put(b)
}

// RxBatch carries the frames of one interrupt: every packet DMA'd before
// the IRQ fires crosses in a single message. The receiver returns the batch
// with PutRxBatch after draining Pkts.
type RxBatch struct {
	Pkts []RxPacket
}

// Size implements core.Message.
func (b *RxBatch) Size() int {
	n := 0
	for i := range b.Pkts {
		n += b.Pkts[i].Size()
	}
	return n
}

// Count implements link.MultiMessage.
func (b *RxBatch) Count() int { return len(b.Pkts) }

var rxBatchPool = sync.Pool{New: func() interface{} { return new(RxBatch) }}

// GetRxBatch returns an empty pooled batch.
func GetRxBatch() *RxBatch { return rxBatchPool.Get().(*RxBatch) }

// PutRxBatch recycles a drained batch, dropping frame references.
func PutRxBatch(b *RxBatch) {
	for i := range b.Pkts {
		b.Pkts[i] = RxPacket{}
	}
	b.Pkts = b.Pkts[:0]
	rxBatchPool.Put(b)
}

var txDonePool = sync.Pool{New: func() interface{} { return new(TxDone) }}

// GetTxDone returns a pooled completion; the receiver returns it with
// PutTxDone after reading its fields.
func GetTxDone() *TxDone { return txDonePool.Get().(*TxDone) }

// PutTxDone recycles a consumed completion.
func PutTxDone(d *TxDone) {
	*d = TxDone{}
	txDonePool.Put(d)
}
