package proto

import (
	"testing"
	"testing/quick"
)

// These robustness properties matter because partition boundaries and the
// TCP proxy feed ParseFrame with bytes from outside the local component:
// malformed input must produce errors, never panics or bogus lengths.

func TestParseFrameNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("ParseFrame panicked on %x", b)
			}
		}()
		fr, err := ParseFrame(b)
		if err != nil {
			return true
		}
		// A successful parse must report a sane wire length.
		return fr.WireLen() >= 0 && fr.VirtualPayload >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParsersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		ParseEthernet(b)
		ParseIPv4(b)
		ParseUDP(b)
		ParseTCP(b)
		ParseKV(b)
		ParsePTP(b)
		ParseNTP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseFrameCorruptedHeaderDetected(t *testing.T) {
	fr := &Frame{
		Eth:     Ethernet{Dst: MACFromID(2), Src: MACFromID(1)},
		IP:      IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP},
		UDP:     UDP{SrcPort: 1, DstPort: 2},
		Payload: AppendKV(nil, KVMsg{Op: KVGet, Key: 7}),
	}
	fr.Seal()
	b := AppendFrame(nil, fr)
	// Flip every single byte of the IPv4 header in turn; the checksum must
	// catch each corruption (headers are what routing trusts).
	for i := EthernetLen; i < EthernetLen+IPv4Len; i++ {
		c := append([]byte(nil), b...)
		c[i] ^= 0xa5
		if _, err := ParseFrame(c); err == nil {
			// Corrupting the checksum bytes themselves also fails the sum;
			// version byte corruption reports truncation — any error is
			// fine, silence is not.
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestRawWireLenProperty(t *testing.T) {
	f := func(virtual uint16, payloadBytes uint8) bool {
		virtual %= 65000 // stay within the IPv4 total-length budget
		fr := &Frame{
			Eth:            Ethernet{Dst: MACFromID(2), Src: MACFromID(1)},
			IP:             IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP},
			UDP:            UDP{SrcPort: 1, DstPort: 2},
			Payload:        make([]byte, payloadBytes),
			VirtualPayload: int(virtual),
		}
		fr.Seal()
		b := AppendFrame(nil, fr)
		return RawWireLen(b) == fr.WireLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Non-IP and truncated buffers report their literal length.
	if RawWireLen([]byte{1, 2, 3}) != 3 {
		t.Error("short buffer literal length")
	}
}

func TestSealIdempotentAndTTL(t *testing.T) {
	fr := &Frame{
		IP:             IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP},
		UDP:            UDP{SrcPort: 1, DstPort: 2},
		VirtualPayload: 100,
	}
	fr.Seal()
	l1 := fr.IP.TotalLen
	fr.Seal()
	if fr.IP.TotalLen != l1 {
		t.Fatal("Seal not idempotent")
	}
	if fr.IP.TTL != 64 || fr.Eth.EtherType != EtherTypeIPv4 {
		t.Fatal("Seal defaults missing")
	}
}

func TestSealRejectsOversizedFrame(t *testing.T) {
	fr := &Frame{
		IP:             IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP},
		VirtualPayload: 70_000,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Seal must reject frames beyond the IPv4 total length")
		}
	}()
	fr.Seal()
}
