package proto

import (
	"bytes"
	"testing"
)

func poolFrame(p *FramePool, payload []byte) *Frame {
	f := p.Get()
	f.Eth = Ethernet{Dst: MACFromID(2), Src: MACFromID(1)}
	f.IP = IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP}
	f.UDP = UDP{SrcPort: 1, DstPort: 2}
	f.Payload = payload
	f.Seal()
	return f
}

func TestFramePoolReuseAndStats(t *testing.T) {
	var p FramePool
	f1 := p.Get()
	f1.Release()
	f2 := p.Get()
	if f2 != f1 {
		t.Fatal("pool did not reuse the released frame")
	}
	f2.Release()
	s := p.Stats()
	if s.Allocs != 1 || s.Reuses != 1 || s.Releases != 2 || s.Live != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFrameDoubleReleasePanics(t *testing.T) {
	var p FramePool
	f := p.Get()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	f.Release()
}

func TestPoollessReleaseIsNoop(t *testing.T) {
	f := &Frame{}
	f.Release()
	f.Release() // must not panic: literal frames have no pool
}

func TestReleaseZeroesAndRecyclesBuffer(t *testing.T) {
	var p FramePool
	src := poolFrame(&p, []byte("hello"))
	wire := AppendFrame(p.GetBuf(), src)
	src.Release()

	dst := p.Get()
	if err := ParseFrameInto(dst, wire); err != nil {
		t.Fatal(err)
	}
	if string(dst.Payload) != "hello" {
		t.Fatalf("payload = %q", dst.Payload)
	}
	// The parsed payload aliases the adopted wire buffer.
	if &dst.Payload[0] != &wire[len(wire)-len(dst.Payload)] {
		t.Fatal("ParseFrameInto copied the payload")
	}
	dst.Release()
	if dst.Payload != nil || dst.IP.Dst != 0 || dst.live {
		t.Fatalf("release left state behind: %+v", dst)
	}
	// The adopted buffer must come back out of GetBuf.
	got := p.GetBuf()
	if cap(got) == 0 || &got[:1][0] != &wire[:1][0] {
		t.Fatal("released frame's buffer was not recycled")
	}
}

func TestParseFrameIntoMatchesParseFrame(t *testing.T) {
	var p FramePool
	src := poolFrame(&p, []byte("payload-bytes"))
	src.VirtualPayload = 0
	wire := AppendFrame(nil, src)

	a, err := ParseFrame(append([]byte(nil), wire...))
	if err != nil {
		t.Fatal(err)
	}
	b := p.Get()
	if err := ParseFrameInto(b, append([]byte(nil), wire...)); err != nil {
		t.Fatal(err)
	}
	if a.Eth != b.Eth || a.IP != b.IP || a.UDP != b.UDP ||
		!bytes.Equal(a.Payload, b.Payload) || a.VirtualPayload != b.VirtualPayload {
		t.Fatalf("parse mismatch:\n%+v\n%+v", a, b)
	}
	b.Release()
}

func TestParseFrameIntoErrorStillAdoptsBuffer(t *testing.T) {
	var p FramePool
	f := p.Get()
	junk := make([]byte, 3) // too short for Ethernet
	if err := ParseFrameInto(f, junk); err == nil {
		t.Fatal("expected parse error")
	}
	f.Release()
	if got := p.GetBuf(); cap(got) != cap(junk) {
		t.Fatal("error path did not adopt the buffer")
	}
}

func TestCloneIsPoolless(t *testing.T) {
	var p FramePool
	f := poolFrame(&p, []byte("x"))
	g := f.Clone()
	f.Release()
	g.Release()
	g.Release() // pool-less: no double-release panic
	if s := p.Stats(); s.Live != 0 {
		t.Fatalf("live = %d", s.Live)
	}
}

func TestWireFramePool(t *testing.T) {
	b := []byte{1, 2, 3}
	w := GetWireFrame(b)
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	PutWireFrame(w)
	w2 := GetWireFrame(nil)
	if w2.B != nil {
		t.Fatal("recycled wrapper kept its buffer")
	}
	PutWireFrame(w2)
}
