package proto

// Ethernet is a 14-byte Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// EthernetLen is the encoded header size.
const EthernetLen = 14

// AppendEthernet appends the encoded header to dst.
func AppendEthernet(dst []byte, h Ethernet) []byte {
	dst = append(dst, h.Dst[:]...)
	dst = append(dst, h.Src[:]...)
	return append(dst, byte(h.EtherType>>8), byte(h.EtherType))
}

// ParseEthernet decodes a header, returning the remaining bytes.
func ParseEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetLen {
		return Ethernet{}, nil, ErrTruncated
	}
	var h Ethernet
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be16(b[12:])
	return h, b[EthernetLen:], nil
}

// IPv4 is a 20-byte option-less IPv4 header. TotalLen covers the IPv4
// header, the L4 header, and the full (possibly virtual) payload.
type IPv4 struct {
	TOS      uint8 // low two bits are the ECN field
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst IP
}

// IPv4Len is the encoded header size.
const IPv4Len = 20

// ECN returns the ECN codepoint.
func (h IPv4) ECN() uint8 { return h.TOS & 0x3 }

// WithECN returns a copy of h with the ECN codepoint replaced.
func (h IPv4) WithECN(ecn uint8) IPv4 {
	h.TOS = h.TOS&^0x3 | ecn&0x3
	return h
}

// AppendIPv4 appends the encoded header, computing the checksum.
func AppendIPv4(dst []byte, h IPv4) []byte {
	off := len(dst)
	dst = append(dst,
		0x45, h.TOS, byte(h.TotalLen>>8), byte(h.TotalLen),
		byte(h.ID>>8), byte(h.ID), 0, 0,
		h.TTL, h.Proto, 0, 0, // checksum zero for computation
		byte(h.Src>>24), byte(h.Src>>16), byte(h.Src>>8), byte(h.Src),
		byte(h.Dst>>24), byte(h.Dst>>16), byte(h.Dst>>8), byte(h.Dst))
	ck := internetChecksum(dst[off : off+IPv4Len])
	put16(dst[off+10:], ck)
	return dst
}

// ParseIPv4 decodes and checksum-verifies a header.
func ParseIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4Len {
		return IPv4{}, nil, ErrTruncated
	}
	if b[0] != 0x45 {
		return IPv4{}, nil, ErrTruncated
	}
	if internetChecksum(b[:IPv4Len]) != 0 {
		return IPv4{}, nil, ErrChecksum
	}
	h := IPv4{
		TOS:      b[1],
		TotalLen: be16(b[2:]),
		ID:       be16(b[4:]),
		TTL:      b[8],
		Proto:    b[9],
		Src:      IP(be32(b[12:])),
		Dst:      IP(be32(b[16:])),
	}
	return h, b[IPv4Len:], nil
}

// UDP is an 8-byte UDP header. Length covers header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// UDPLen is the encoded header size.
const UDPLen = 8

// AppendUDP appends the encoded header (checksum zero, legal for IPv4).
func AppendUDP(dst []byte, h UDP) []byte {
	return append(dst,
		byte(h.SrcPort>>8), byte(h.SrcPort), byte(h.DstPort>>8), byte(h.DstPort),
		byte(h.Length>>8), byte(h.Length), 0, 0)
}

// ParseUDP decodes a header.
func ParseUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPLen {
		return UDP{}, nil, ErrTruncated
	}
	h := UDP{SrcPort: be16(b), DstPort: be16(b[2:]), Length: be16(b[4:])}
	return h, b[UDPLen:], nil
}

// TCP flag bits.
const (
	TCPFin uint16 = 1 << 0
	TCPSyn uint16 = 1 << 1
	TCPRst uint16 = 1 << 2
	TCPPsh uint16 = 1 << 3
	TCPAck uint16 = 1 << 4
	TCPUrg uint16 = 1 << 5
	TCPEce uint16 = 1 << 6 // ECN echo: receiver saw CE
	TCPCwr uint16 = 1 << 7 // sender reduced congestion window
)

// TCP is a 20-byte option-less TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint16
	Window           uint16
}

// TCPLen is the encoded header size.
const TCPLen = 20

// AppendTCP appends the encoded header (checksum zero; the simulator does
// not corrupt payloads, and computing pseudo-header checksums on every
// segment would only burn simulation cycles).
func AppendTCP(dst []byte, h TCP) []byte {
	off := byte(5 << 4) // data offset 5 words
	return append(dst,
		byte(h.SrcPort>>8), byte(h.SrcPort), byte(h.DstPort>>8), byte(h.DstPort),
		byte(h.Seq>>24), byte(h.Seq>>16), byte(h.Seq>>8), byte(h.Seq),
		byte(h.Ack>>24), byte(h.Ack>>16), byte(h.Ack>>8), byte(h.Ack),
		off, byte(h.Flags), byte(h.Window>>8), byte(h.Window),
		0, 0, 0, 0)
}

// ParseTCP decodes a header.
func ParseTCP(b []byte) (TCP, []byte, error) {
	if len(b) < TCPLen {
		return TCP{}, nil, ErrTruncated
	}
	h := TCP{
		SrcPort: be16(b), DstPort: be16(b[2:]),
		Seq: be32(b[4:]), Ack: be32(b[8:]),
		Flags:  uint16(b[13]) | uint16(b[12]&0x1)<<8,
		Window: be16(b[14:]),
	}
	return h, b[TCPLen:], nil
}
