package proto

// Frame is a fully parsed Ethernet/IPv4 packet as it travels between
// simulator components. It is the payload type on network channels and
// implements core.Message via Size.
//
// Payload holds the semantic application bytes (a KV, PTP, or NTP message).
// VirtualPayload counts additional synthetic payload bytes that occupy link
// time and queue space but carry no information (bulk-transfer data); they
// are covered by the IPv4 total length but never materialized.
type Frame struct {
	Eth Ethernet
	IP  IPv4
	UDP UDP // valid when IP.Proto == IPProtoUDP
	TCP TCP // valid when IP.Proto == IPProtoTCP

	Payload        []byte
	VirtualPayload int

	// Pooling state (see FramePool). buf is the adopted backing buffer the
	// Payload aliases into; pool is the owning free list; live guards
	// against double release. All three are zero for frames built with
	// struct literals.
	buf  []byte
	pool *FramePool
	live bool
}

// l4Len returns the encoded transport header length.
func (f *Frame) l4Len() int {
	switch f.IP.Proto {
	case IPProtoUDP:
		return UDPLen
	case IPProtoTCP:
		return TCPLen
	default:
		return 0
	}
}

// PayloadLen is the full (real + virtual) payload size in bytes.
func (f *Frame) PayloadLen() int { return len(f.Payload) + f.VirtualPayload }

// WireLen is the frame's size on the wire in bytes, virtual payload
// included.
func (f *Frame) WireLen() int {
	return EthernetLen + IPv4Len + f.l4Len() + f.PayloadLen()
}

// Size implements core.Message.
func (f *Frame) Size() int { return f.WireLen() }

// Seal fixes up the length fields (IPv4 total length, UDP length) from the
// payload sizes. Call it after filling in headers and payload. Payloads
// that would overflow the IPv4 total length panic: silently wrapping the
// length would corrupt timing at every serialization point downstream.
func (f *Frame) Seal() *Frame {
	total := IPv4Len + f.l4Len() + f.PayloadLen()
	if total > 0xffff {
		panic("proto: frame exceeds the IPv4 maximum total length")
	}
	f.IP.TotalLen = uint16(total)
	if f.IP.Proto == IPProtoUDP {
		f.UDP.Length = uint16(UDPLen + f.PayloadLen())
	}
	if f.IP.TTL == 0 {
		f.IP.TTL = 64
	}
	f.Eth.EtherType = EtherTypeIPv4
	return f
}

// AppendFrame encodes the frame. Virtual payload bytes are not written; the
// IPv4 total length still covers them, which is how ParseFrame recovers the
// count (like a capture with a snap length).
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = AppendEthernet(dst, f.Eth)
	dst = AppendIPv4(dst, f.IP)
	switch f.IP.Proto {
	case IPProtoUDP:
		dst = AppendUDP(dst, f.UDP)
	case IPProtoTCP:
		dst = AppendTCP(dst, f.TCP)
	}
	return append(dst, f.Payload...)
}

// ParseFrame decodes a frame produced by AppendFrame. The returned frame's
// Payload aliases b — the caller hands the buffer over rather than paying
// the copy the old decoder made; callers that mutate b afterwards must copy
// first.
func ParseFrame(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := ParseFrameInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseFrameInto decodes into f, aliasing f.Payload into b with no copy.
// Ownership of b transfers to the frame: a pooled f adopts b and returns it
// to its pool on Release (even when parsing fails, so error paths need only
// release the frame). f's previously parsed fields are overwritten; Payload
// and VirtualPayload are reset explicitly since a pooled frame may carry
// stale values on the error paths below.
func ParseFrameInto(f *Frame, b []byte) error {
	f.buf = b
	f.Payload = nil
	f.VirtualPayload = 0
	var err error
	var rest []byte
	if f.Eth, rest, err = ParseEthernet(b); err != nil {
		return err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		f.IP = IPv4{}
		return nil // non-IP frame: opaque
	}
	if f.IP, rest, err = ParseIPv4(rest); err != nil {
		return err
	}
	switch f.IP.Proto {
	case IPProtoUDP:
		if f.UDP, rest, err = ParseUDP(rest); err != nil {
			return err
		}
	case IPProtoTCP:
		if f.TCP, rest, err = ParseTCP(rest); err != nil {
			return err
		}
	}
	if len(rest) > 0 {
		f.Payload = rest
	}
	total := int(f.IP.TotalLen) - IPv4Len - f.l4Len()
	if total < len(f.Payload) {
		return ErrTruncated
	}
	f.VirtualPayload = total - len(f.Payload)
	return nil
}

// RawFrame is a serialized Ethernet frame traveling between simulator
// components as an honest byte string (the payload type of SimBricks
// Ethernet channels).
type RawFrame []byte

// Size implements core.Message.
func (r RawFrame) Size() int { return len(r) }

// RawWireLen returns the true wire length of an encoded frame including
// elided virtual payload bytes, by consulting the embedded IPv4 total
// length. Non-IPv4 or truncated buffers report their literal length.
func RawWireLen(b []byte) int {
	if len(b) >= EthernetLen+IPv4Len && be16(b[12:]) == EtherTypeIPv4 {
		if total := EthernetLen + int(be16(b[EthernetLen+2:])); total > len(b) {
			return total
		}
	}
	return len(b)
}

// CopyPayload points the frame's Payload at a private copy of p so the
// frame does not retain the caller's slice — p may alias another frame's
// pooled buffer that gets recycled before this frame is delivered. Pooled
// frames copy into a pooled buffer (returned on Release); pool-less frames
// fall back to a plain allocation.
func (f *Frame) CopyPayload(p []byte) {
	if len(p) == 0 {
		f.Payload = nil
		return
	}
	if f.pool != nil {
		f.buf = append(f.pool.GetBuf(), p...)
		f.Payload = f.buf
	} else {
		f.Payload = append([]byte(nil), p...)
	}
}

// Clone returns a deep copy of the frame. Switches that modify headers
// (ECN marking, TTL, PTP correction) operate on their own copy so that
// fan-out does not alias. The clone is pool-less regardless of the
// original: its Release is a no-op and the GC reclaims it.
func (f *Frame) Clone() *Frame {
	g := *f
	g.buf, g.pool, g.live = nil, nil, false
	if f.Payload != nil {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	return &g
}
