package proto

// Frame is a fully parsed Ethernet/IPv4 packet as it travels between
// simulator components. It is the payload type on network channels and
// implements core.Message via Size.
//
// Payload holds the semantic application bytes (a KV, PTP, or NTP message).
// VirtualPayload counts additional synthetic payload bytes that occupy link
// time and queue space but carry no information (bulk-transfer data); they
// are covered by the IPv4 total length but never materialized.
type Frame struct {
	Eth Ethernet
	IP  IPv4
	UDP UDP // valid when IP.Proto == IPProtoUDP
	TCP TCP // valid when IP.Proto == IPProtoTCP

	Payload        []byte
	VirtualPayload int
}

// l4Len returns the encoded transport header length.
func (f *Frame) l4Len() int {
	switch f.IP.Proto {
	case IPProtoUDP:
		return UDPLen
	case IPProtoTCP:
		return TCPLen
	default:
		return 0
	}
}

// PayloadLen is the full (real + virtual) payload size in bytes.
func (f *Frame) PayloadLen() int { return len(f.Payload) + f.VirtualPayload }

// WireLen is the frame's size on the wire in bytes, virtual payload
// included.
func (f *Frame) WireLen() int {
	return EthernetLen + IPv4Len + f.l4Len() + f.PayloadLen()
}

// Size implements core.Message.
func (f *Frame) Size() int { return f.WireLen() }

// Seal fixes up the length fields (IPv4 total length, UDP length) from the
// payload sizes. Call it after filling in headers and payload. Payloads
// that would overflow the IPv4 total length panic: silently wrapping the
// length would corrupt timing at every serialization point downstream.
func (f *Frame) Seal() *Frame {
	total := IPv4Len + f.l4Len() + f.PayloadLen()
	if total > 0xffff {
		panic("proto: frame exceeds the IPv4 maximum total length")
	}
	f.IP.TotalLen = uint16(total)
	if f.IP.Proto == IPProtoUDP {
		f.UDP.Length = uint16(UDPLen + f.PayloadLen())
	}
	if f.IP.TTL == 0 {
		f.IP.TTL = 64
	}
	f.Eth.EtherType = EtherTypeIPv4
	return f
}

// AppendFrame encodes the frame. Virtual payload bytes are not written; the
// IPv4 total length still covers them, which is how ParseFrame recovers the
// count (like a capture with a snap length).
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = AppendEthernet(dst, f.Eth)
	dst = AppendIPv4(dst, f.IP)
	switch f.IP.Proto {
	case IPProtoUDP:
		dst = AppendUDP(dst, f.UDP)
	case IPProtoTCP:
		dst = AppendTCP(dst, f.TCP)
	}
	return append(dst, f.Payload...)
}

// ParseFrame decodes a frame produced by AppendFrame.
func ParseFrame(b []byte) (*Frame, error) {
	f := &Frame{}
	var err error
	var rest []byte
	if f.Eth, rest, err = ParseEthernet(b); err != nil {
		return nil, err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		return f, nil // non-IP frame: opaque
	}
	if f.IP, rest, err = ParseIPv4(rest); err != nil {
		return nil, err
	}
	switch f.IP.Proto {
	case IPProtoUDP:
		if f.UDP, rest, err = ParseUDP(rest); err != nil {
			return nil, err
		}
	case IPProtoTCP:
		if f.TCP, rest, err = ParseTCP(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) > 0 {
		f.Payload = append([]byte(nil), rest...)
	}
	total := int(f.IP.TotalLen) - IPv4Len - f.l4Len()
	if total < len(f.Payload) {
		return nil, ErrTruncated
	}
	f.VirtualPayload = total - len(f.Payload)
	return f, nil
}

// RawFrame is a serialized Ethernet frame traveling between simulator
// components as an honest byte string (the payload type of SimBricks
// Ethernet channels).
type RawFrame []byte

// Size implements core.Message.
func (r RawFrame) Size() int { return len(r) }

// RawWireLen returns the true wire length of an encoded frame including
// elided virtual payload bytes, by consulting the embedded IPv4 total
// length. Non-IPv4 or truncated buffers report their literal length.
func RawWireLen(b []byte) int {
	if len(b) >= EthernetLen+IPv4Len && be16(b[12:]) == EtherTypeIPv4 {
		if total := EthernetLen + int(be16(b[EthernetLen+2:])); total > len(b) {
			return total
		}
	}
	return len(b)
}

// Clone returns a deep copy of the frame. Switches that modify headers
// (ECN marking, TTL, PTP correction) operate on their own copy so that
// fan-out does not alias.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Payload != nil {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	return &g
}
