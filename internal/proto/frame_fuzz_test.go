package proto

import (
	"bytes"
	"testing"
)

// FuzzFrame checks the encode/decode round trip: a sealed frame encodes,
// parses back to the same fields, and re-encodes byte-identically — in
// particular the IPv4 checksum is stable across the round trip. It also
// cross-checks the zero-copy ParseFrameInto against ParseFrame.
func FuzzFrame(f *testing.F) {
	f.Add(uint32(1), uint32(2), true, uint16(1111), uint16(9999), []byte("hi"), uint16(0))
	f.Add(uint32(7), uint32(9), false, uint16(40000), uint16(5001), []byte{}, uint16(1400))
	f.Add(uint32(0), uint32(0xffffffff), true, uint16(0), uint16(0), bytes.Repeat([]byte{0xAB}, 300), uint16(60000))
	f.Fuzz(func(t *testing.T, src, dst uint32, udp bool, sport, dport uint16, payload []byte, virtual uint16) {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		fr := &Frame{
			Eth:     Ethernet{Dst: MACFromID(dst), Src: MACFromID(src)},
			IP:      IPv4{Src: IP(src), Dst: IP(dst)},
			Payload: payload,
		}
		if udp {
			fr.IP.Proto = IPProtoUDP
			fr.UDP = UDP{SrcPort: sport, DstPort: dport}
		} else {
			fr.IP.Proto = IPProtoTCP
			fr.TCP = TCP{SrcPort: sport, DstPort: dport, Seq: src, Ack: dst, Flags: TCPAck, Window: 65535}
		}
		// Clamp the virtual payload so Seal cannot overflow the IPv4 total.
		if max := 0xffff - IPv4Len - TCPLen - len(payload); int(virtual) > max {
			virtual = uint16(max)
		}
		fr.VirtualPayload = int(virtual)
		fr.Seal()

		wire := AppendFrame(nil, fr)
		got, err := ParseFrame(append([]byte(nil), wire...))
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if got.Eth != fr.Eth || got.IP != fr.IP || got.UDP != fr.UDP || got.TCP != fr.TCP {
			t.Fatalf("headers diverged:\n in: %+v\nout: %+v", fr, got)
		}
		if !bytes.Equal(got.Payload, fr.Payload) || got.VirtualPayload != fr.VirtualPayload {
			t.Fatalf("payload diverged: %d/%d vs %d/%d",
				len(got.Payload), got.VirtualPayload, len(fr.Payload), fr.VirtualPayload)
		}

		// Re-encoding the parsed frame must reproduce the wire bytes exactly
		// (stable checksums included).
		again := AppendFrame(nil, got)
		if !bytes.Equal(again, wire) {
			t.Fatalf("re-encode diverged:\n%x\n%x", wire, again)
		}

		// The zero-copy path must agree with ParseFrame, and the parsed
		// payload must alias the input buffer (no hidden copy).
		var pool FramePool
		pf := pool.Get()
		if err := ParseFrameInto(pf, wire); err != nil {
			t.Fatalf("ParseFrameInto: %v", err)
		}
		if pf.Eth != got.Eth || pf.IP != got.IP || pf.UDP != got.UDP || pf.TCP != got.TCP ||
			!bytes.Equal(pf.Payload, got.Payload) || pf.VirtualPayload != got.VirtualPayload {
			t.Fatal("ParseFrameInto disagrees with ParseFrame")
		}
		if len(pf.Payload) > 0 && &pf.Payload[0] != &wire[len(wire)-len(pf.Payload)] {
			t.Fatal("ParseFrameInto copied the payload")
		}
		pf.Release()
		if s := pool.Stats(); s.Live != 0 {
			t.Fatalf("leaked %d frames", s.Live)
		}
	})
}
