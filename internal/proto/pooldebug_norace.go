//go:build !race

package proto

// poolDebug is off in regular builds; see pooldebug_race.go.
const poolDebug = false

func poisonBuf([]byte) {}
