package proto

import "sync"

// FramePool is a free list of Frames and of the payload buffers backing
// them. It makes the steady-state packet path allocation-free: terminal
// sinks Release frames back into the pool instead of dropping them for the
// garbage collector, and encode paths reuse pooled byte buffers instead of
// appending into fresh slices.
//
// Ownership contract. A *Frame obtained from Get is owned by exactly one
// component at a time. Handing the frame to a port, sink, or scheduler
// delivery transfers ownership; the terminal consumer calls Release. A pool
// is confined to its owning component's scheduler goroutine — cross-runner
// boundaries always pass encoded bytes (WireFrame), never *Frame, so pools
// need no locking. Byte buffers do migrate between pools: ParseFrameInto
// adopts the input buffer into the receiving frame, and Release returns it
// to the receiver's pool. Traffic flowing both ways keeps the buffer
// populations balanced; poolMaxFree caps them either way.
//
// Frames built with plain struct literals (tests, app-injected replies)
// have no pool; their Release is a no-op and the GC reclaims them.
type FramePool struct {
	free  []*Frame
	bufs  [][]byte
	stats PoolStats
}

// PoolStats is a pool-health counter snapshot.
type PoolStats struct {
	Allocs   uint64 // frames newly heap-allocated
	Reuses   uint64 // frames served from the free list
	Releases uint64 // frames returned via Release
	Live     uint64 // frames currently checked out (leaks if nonzero after a run)
}

// Add accumulates o into s; Live saturates at zero like the per-pool value.
func (s *PoolStats) Add(o PoolStats) {
	s.Allocs += o.Allocs
	s.Reuses += o.Reuses
	s.Releases += o.Releases
	s.Live += o.Live
}

// poolMaxFree bounds both free lists so asymmetric traffic cannot grow a
// pool without bound; overflow falls through to the garbage collector.
const poolMaxFree = 4096

// Get returns a zeroed frame owned by the caller.
func (p *FramePool) Get() *Frame {
	n := len(p.free)
	if n == 0 {
		p.stats.Allocs++
		return &Frame{pool: p, live: true}
	}
	f := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.stats.Reuses++
	f.live = true
	return f
}

// GetBuf returns an empty byte buffer with pooled capacity, for encode
// paths: buf = AppendFrame(pool.GetBuf(), f). The buffer returns to a pool
// when the frame that eventually adopts it (ParseFrameInto) is released.
func (p *FramePool) GetBuf() []byte {
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
		return b[:0]
	}
	return make([]byte, 0, 256)
}

// PutBuf returns a buffer to the pool. Frames release their adopted buffer
// automatically; call this only for buffers that never reached a frame.
func (p *FramePool) PutBuf(b []byte) {
	if cap(b) == 0 || len(p.bufs) >= poolMaxFree {
		return
	}
	p.bufs = append(p.bufs, b[:0])
}

// Stats returns the pool-health counters.
func (p *FramePool) Stats() PoolStats {
	s := p.stats
	s.Live = s.Allocs + s.Reuses - s.Releases
	return s
}

// Release returns the frame (and any adopted payload buffer) to its pool.
// Releasing a pool-less frame is a no-op; releasing a pooled frame twice
// panics — the double-release checker that, with buffer poisoning under
// -race builds, guards the ownership hand-off contract.
func (f *Frame) Release() {
	p := f.pool
	if p == nil {
		return
	}
	if !f.live {
		panic("proto: frame released twice")
	}
	buf := f.buf
	*f = Frame{}
	f.pool = p
	if buf != nil {
		if poolDebug {
			poisonBuf(buf)
		}
		p.PutBuf(buf)
	}
	p.stats.Releases++
	if len(p.free) < poolMaxFree {
		p.free = append(p.free, f)
	}
}

// WireFrame is a serialized Ethernet frame traveling between simulator
// components, the pooled pointer analog of RawFrame: as a pointer type it
// crosses the core.Message interface without boxing, and the wrapper is
// recycled through a sync.Pool (wire frames cross runner goroutines, so the
// wrapper pool must be concurrency-safe; the byte buffer inside is handed
// off with the message and adopted by the receiver's FramePool).
type WireFrame struct{ B []byte }

// Size implements core.Message, matching RawFrame's accounting.
func (w *WireFrame) Size() int { return len(w.B) }

var wirePool = sync.Pool{New: func() any { return new(WireFrame) }}

// GetWireFrame wraps b in a pooled WireFrame. Ownership of b transfers with
// the message.
func GetWireFrame(b []byte) *WireFrame {
	w := wirePool.Get().(*WireFrame)
	w.B = b
	return w
}

// PutWireFrame recycles the wrapper (not the buffer — the consumer has
// adopted or copied it by the time the wrapper is returned).
func PutWireFrame(w *WireFrame) {
	w.B = nil
	wirePool.Put(w)
}

// Release implements core.Releaser: recycle the wrapper and leave the buffer
// to the garbage collector (the wrapper carries no pool reference to return
// it to). Discard paths — stragglers dropped before delivery, staged output
// cleared by a rollback, queues swept at end of run — release wire frames
// that never reach a consumer. The interface is also load-bearing for
// optimistic execution: delivery adopts B, so the speculative input log must
// deep-copy wire frames rather than hold a reference that replay would find
// recycled.
func (w *WireFrame) Release() { PutWireFrame(w) }
