package proto

import "fmt"

// Prefix is a CIDR-style aggregate of IPv4 addresses: the Bits highest-order
// bits of Addr identify the block, the rest are zero. Prefixes are the
// currency of aggregate routing — a datacenter switch holds one entry per
// pod or per leaf block instead of one per host, which is what keeps routing
// state O(pods) on 10⁴–10⁵-host fabrics.
type Prefix struct {
	Addr IP
	Bits uint8
}

// MakePrefix builds a normalized prefix (host bits of addr masked off).
// It panics when bits is outside [0, 32].
func MakePrefix(addr IP, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("proto: prefix length %d out of range", bits))
	}
	return Prefix{Addr: addr.Masked(uint8(bits)), Bits: uint8(bits)}
}

// Mask returns the netmask selecting the prefix's fixed bits.
func (p Prefix) Mask() IP { return IP(uint32(0xffffffff) << (32 - p.Bits)) }

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool { return ip.Masked(p.Bits) == p.Addr }

// String renders "a.b.c.d/len".
func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.Addr, p.Bits) }

// Masked returns ip with all but the bits highest-order bits cleared.
// bits must be in [0, 32]; a Go shift by >= 32 yields 0, so bits == 0
// correctly maps every address to 0.
func (ip IP) Masked(bits uint8) IP {
	return ip & IP(uint32(0xffffffff)<<(32-bits))
}
