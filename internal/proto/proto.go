// Package proto defines the wire formats that cross SplitSim channels:
// Ethernet, IPv4, UDP and TCP headers, and the application protocols used by
// the case studies (key-value/NetCache/Pegasus, NTP, PTP).
//
// Encoders follow the append style (Append* returns the extended slice) and
// decoders the parse style (Parse* returns the value and the remaining
// bytes). Headers use real network byte order and layouts, so frames that
// cross a partition boundary are honest byte strings, exactly like the
// Ethernet messages on SimBricks channels. Synthetic bulk payloads are
// elided on the wire: the IPv4 total length covers them, but the bytes are
// not materialized — the same way a packet capture with a snap length works.
package proto

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a buffer too short for the header being parsed.
var ErrTruncated = errors.New("proto: truncated packet")

// ErrChecksum reports an IPv4 header checksum mismatch.
var ErrChecksum = errors.New("proto: bad checksum")

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// MACFromID derives a stable locally administered MAC for host id.
func MACFromID(id uint32) MAC {
	return MAC{0x02, 0x00, byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP is an IPv4 address in host integer form.
type IP uint32

// HostIP derives a stable 10.0.0.0/8 address for host id.
func HostIP(id uint32) IP {
	return IP(0x0a000000 | (id & 0x00ffffff))
}

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
)

// IP protocol numbers.
const (
	IPProtoTCP uint8 = 6
	IPProtoUDP uint8 = 17
)

// ECN codepoints (the low two bits of the IPv4 TOS byte).
const (
	ECNNotECT uint8 = 0
	ECNECT1   uint8 = 1
	ECNECT0   uint8 = 2
	ECNCE     uint8 = 3
)

func be16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func be64(b []byte) uint64 { return uint64(be32(b))<<32 | uint64(be32(b[4:])) }

func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func put64(b []byte, v uint64) { put32(b, uint32(v>>32)); put32(b[4:], uint32(v)) }

// internetChecksum computes the 16-bit one's-complement sum used by IPv4.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(be16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
