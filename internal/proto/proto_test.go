package proto

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMACString(t *testing.T) {
	m := MACFromID(0x01020304)
	if got := m.String(); got != "02:00:01:02:03:04" {
		t.Errorf("MAC string = %q", got)
	}
}

func TestIPString(t *testing.T) {
	if got := HostIP(258).String(); got != "10.0.1.2" {
		t.Errorf("HostIP(258) = %q, want 10.0.1.2", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, et uint16) bool {
		h := Ethernet{Dst: dst, Src: src, EtherType: et}
		b := AppendEthernet(nil, h)
		got, rest, err := ParseEthernet(b)
		return err == nil && got == h && len(rest) == 0 && len(b) == EthernetLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, err := ParseEthernet(make([]byte, 13)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, totalLen, id uint16, ttl uint8, src, dst uint32) bool {
		h := IPv4{TOS: tos, TotalLen: totalLen, ID: id, TTL: ttl,
			Proto: IPProtoUDP, Src: IP(src), Dst: IP(dst)}
		b := AppendIPv4(nil, h)
		got, rest, err := ParseIPv4(b)
		return err == nil && got == h && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{TOS: 0, TotalLen: 100, TTL: 64, Proto: IPProtoTCP, Src: 1, Dst: 2}
	b := AppendIPv4(nil, h)
	b[8] ^= 0xff // corrupt TTL
	if _, _, err := ParseIPv4(b); err != ErrChecksum {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestIPv4ECN(t *testing.T) {
	h := IPv4{TOS: 0xfc}
	h = h.WithECN(ECNECT0)
	if h.ECN() != ECNECT0 || h.TOS != 0xfe {
		t.Errorf("WithECN(ECT0): TOS = %#x, ECN = %d", h.TOS, h.ECN())
	}
	h = h.WithECN(ECNCE)
	if h.ECN() != ECNCE {
		t.Errorf("ECN = %d, want CE", h.ECN())
	}
}

func TestUDPRoundTrip(t *testing.T) {
	f := func(sp, dp, l uint16) bool {
		h := UDP{SrcPort: sp, DstPort: dp, Length: l}
		b := AppendUDP(nil, h)
		got, rest, err := ParseUDP(b)
		return err == nil && got == h && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		h := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: uint16(flags), Window: win}
		b := AppendTCP(nil, h)
		got, rest, err := ParseTCP(b)
		return err == nil && got == h && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPFlags(t *testing.T) {
	h := TCP{Flags: TCPSyn | TCPAck | TCPEce | TCPCwr}
	b := AppendTCP(nil, h)
	got, _, err := ParseTCP(b)
	if err != nil || got.Flags != TCPSyn|TCPAck|TCPEce|TCPCwr {
		t.Errorf("flags = %#x, err = %v", got.Flags, err)
	}
}

func TestFrameRoundTripUDP(t *testing.T) {
	f := &Frame{
		Eth:     Ethernet{Dst: MACFromID(2), Src: MACFromID(1)},
		IP:      IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoUDP},
		UDP:     UDP{SrcPort: 1234, DstPort: PortKV},
		Payload: AppendKV(nil, KVMsg{Op: KVGet, Key: 42, Client: 7, Seq: 9}),
	}
	f.Seal()
	b := AppendFrame(nil, f)
	got, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP != f.IP || got.UDP != f.UDP || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("frame mismatch:\n got %+v\nwant %+v", got, f)
	}
	if got.WireLen() != f.WireLen() {
		t.Fatalf("wire length %d != %d", got.WireLen(), f.WireLen())
	}
}

func TestFrameVirtualPayload(t *testing.T) {
	f := &Frame{
		Eth:            Ethernet{Dst: MACFromID(2), Src: MACFromID(1)},
		IP:             IPv4{Src: HostIP(1), Dst: HostIP(2), Proto: IPProtoTCP},
		TCP:            TCP{SrcPort: 40000, DstPort: PortBulk, Seq: 1000},
		VirtualPayload: 1400,
	}
	f.Seal()
	b := AppendFrame(nil, f)
	// Only headers hit the byte string; virtual payload is elided.
	if len(b) != EthernetLen+IPv4Len+TCPLen {
		t.Fatalf("encoded %d bytes, want headers only", len(b))
	}
	got, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualPayload != 1400 {
		t.Fatalf("virtual payload = %d, want 1400", got.VirtualPayload)
	}
	if got.WireLen() != f.WireLen() {
		t.Fatalf("wire length %d != %d", got.WireLen(), f.WireLen())
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(key, seq uint64, client uint32, vlen uint16, useTCP bool) bool {
		fr := &Frame{
			Eth: Ethernet{Dst: MACFromID(9), Src: MACFromID(8)},
			IP:  IPv4{Src: HostIP(8), Dst: HostIP(9)},
		}
		if useTCP {
			fr.IP.Proto = IPProtoTCP
			fr.TCP = TCP{SrcPort: 1, DstPort: 2, Seq: uint32(seq)}
			// Clamp below the IPv4 total-length ceiling (headers included):
			// Seal deliberately panics past it.
			fr.VirtualPayload = int(vlen) % (0xffff - IPv4Len - TCPLen + 1)
		} else {
			fr.IP.Proto = IPProtoUDP
			fr.UDP = UDP{SrcPort: 3, DstPort: PortKV}
			fr.Payload = AppendKV(nil, KVMsg{Op: KVSet, Key: key, Seq: seq, Client: client})
			fr.VirtualPayload = int(vlen % 512)
		}
		fr.Seal()
		got, err := ParseFrame(AppendFrame(nil, fr))
		if err != nil {
			return false
		}
		return got.WireLen() == fr.WireLen() &&
			got.VirtualPayload == fr.VirtualPayload &&
			bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameClone(t *testing.T) {
	f := &Frame{
		Eth:     Ethernet{Dst: MACFromID(2)},
		IP:      IPv4{Proto: IPProtoUDP, Src: 1, Dst: 2},
		Payload: []byte{1, 2, 3},
	}
	g := f.Clone()
	g.Payload[0] = 99
	g.IP.TOS = 3
	if f.Payload[0] != 1 || f.IP.TOS != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestKVRoundTrip(t *testing.T) {
	f := func(op uint8, flags uint8, key, ver, seq uint64, client uint32, vlen uint16) bool {
		m := KVMsg{Op: KVOp(op%6 + 1), Flags: flags, Key: key, Ver: ver,
			Client: client, Seq: seq, ValueLen: vlen}
		got, err := ParseKV(AppendKV(nil, m))
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := ParseKV(make([]byte, KVMsgLen-1)); err != ErrTruncated {
		t.Error("short KV should be ErrTruncated")
	}
}

func TestPTPRoundTrip(t *testing.T) {
	f := func(typ uint8, seq uint16, origin, corr int64) bool {
		m := PTPMsg{Type: PTPType(typ%4 + 1), Seq: seq,
			Origin: sim.Time(origin), Correction: sim.Time(corr)}
		got, err := ParsePTP(AppendPTP(nil, m))
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNTPRoundTrip(t *testing.T) {
	f := func(mode uint8, t1, t2, t3 int64) bool {
		m := NTPMsg{Mode: mode, T1: sim.Time(t1), T2: sim.Time(t2), T3: sim.Time(t3)}
		got, err := ParseNTP(AppendNTP(nil, m))
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpStrings(t *testing.T) {
	if KVGet.String() != "GET" || KVSet.String() != "SET" {
		t.Error("KVOp strings wrong")
	}
	if PTPSync.String() != "Sync" || PTPDelayResp.String() != "DelayResp" {
		t.Error("PTPType strings wrong")
	}
}

func TestInternetChecksum(t *testing.T) {
	// RFC 1071 example: checksum of a buffer plus its checksum is zero.
	b := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	ck := internetChecksum(b)
	put16(b[10:], ck)
	if internetChecksum(b) != 0 {
		t.Fatal("checksum of checksummed header should be 0")
	}
	// Known value for this canonical header.
	if ck != 0xb861 {
		t.Fatalf("checksum = %#x, want 0xb861", ck)
	}
}
