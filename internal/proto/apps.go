package proto

import "repro/internal/sim"

// Well-known UDP/TCP ports used by the case-study applications.
const (
	PortKV         uint16 = 7000  // NetCache/Pegasus key-value protocol
	PortNTP        uint16 = 123   // NTP
	PortPTPEvent   uint16 = 319   // PTP event messages (Sync, DelayReq)
	PortPTPGeneral uint16 = 320   // PTP general messages (FollowUp, DelayResp)
	PortCRDB       uint16 = 26257 // commit-wait KV store
	PortBulk       uint16 = 5001  // bulk-transfer background traffic
)

// KVOp enumerates key-value protocol operations, including the in-network
// variants the NetCache and Pegasus dataplanes speak.
type KVOp uint8

const (
	KVGet KVOp = iota + 1
	KVSet
	KVGetReply
	KVSetReply
	// KVCacheUpdate installs/refreshes a key in a switch cache
	// (NetCache write-through after a SET).
	KVCacheUpdate
	// KVInvalidate removes a key from a switch cache.
	KVInvalidate
)

func (o KVOp) String() string {
	switch o {
	case KVGet:
		return "GET"
	case KVSet:
		return "SET"
	case KVGetReply:
		return "GET-R"
	case KVSetReply:
		return "SET-R"
	case KVCacheUpdate:
		return "CUPD"
	case KVInvalidate:
		return "CINV"
	default:
		return "?"
	}
}

// KV message flag bits.
const (
	// KVFlagSwitchHit marks a reply served directly by a switch cache.
	KVFlagSwitchHit uint8 = 1 << 0
)

// KVMsg is the fixed-size key-value protocol message.
type KVMsg struct {
	Op       KVOp
	Flags    uint8
	Key      uint64
	Ver      uint64 // version number, used by in-network coherence
	Client   uint32 // requesting client id, echoed in replies
	Seq      uint64 // per-client request sequence number
	ValueLen uint16 // value size in bytes (carried as virtual payload)
}

// KVMsgLen is the encoded size.
const KVMsgLen = 32

// AppendKV appends the encoded message.
func AppendKV(dst []byte, m KVMsg) []byte {
	var b [KVMsgLen]byte
	b[0] = byte(m.Op)
	b[1] = m.Flags
	put64(b[2:], m.Key)
	put64(b[10:], m.Ver)
	put32(b[18:], m.Client)
	put64(b[22:], m.Seq)
	put16(b[30:], m.ValueLen)
	return append(dst, b[:]...)
}

// ParseKV decodes a message.
func ParseKV(b []byte) (KVMsg, error) {
	if len(b) < KVMsgLen {
		return KVMsg{}, ErrTruncated
	}
	return KVMsg{
		Op:       KVOp(b[0]),
		Flags:    b[1],
		Key:      be64(b[2:]),
		Ver:      be64(b[10:]),
		Client:   be32(b[18:]),
		Seq:      be64(b[22:]),
		ValueLen: be16(b[30:]),
	}, nil
}

// PTPType enumerates the PTP message types the clock-sync case study uses
// (end-to-end delay mechanism with two-step sync).
type PTPType uint8

const (
	PTPSync PTPType = iota + 1
	PTPFollowUp
	PTPDelayReq
	PTPDelayResp
)

func (t PTPType) String() string {
	switch t {
	case PTPSync:
		return "Sync"
	case PTPFollowUp:
		return "FollowUp"
	case PTPDelayReq:
		return "DelayReq"
	case PTPDelayResp:
		return "DelayResp"
	default:
		return "?"
	}
}

// PTPMsg is a simplified PTP message. Origin carries the relevant precise
// timestamp (meaning depends on Type); Correction accumulates transparent-
// clock residence time added by switches along the path.
type PTPMsg struct {
	Type       PTPType
	Seq        uint16
	Origin     sim.Time
	Correction sim.Time
}

// PTPMsgLen is the encoded size.
const PTPMsgLen = 19

// AppendPTP appends the encoded message.
func AppendPTP(dst []byte, m PTPMsg) []byte {
	var b [PTPMsgLen]byte
	b[0] = byte(m.Type)
	put16(b[1:], m.Seq)
	put64(b[3:], uint64(m.Origin))
	put64(b[11:], uint64(m.Correction))
	return append(dst, b[:]...)
}

// ParsePTP decodes a message.
func ParsePTP(b []byte) (PTPMsg, error) {
	if len(b) < PTPMsgLen {
		return PTPMsg{}, ErrTruncated
	}
	return PTPMsg{
		Type:       PTPType(b[0]),
		Seq:        be16(b[1:]),
		Origin:     sim.Time(be64(b[3:])),
		Correction: sim.Time(be64(b[11:])),
	}, nil
}

// NTP modes.
const (
	NTPModeClient uint8 = 3
	NTPModeServer uint8 = 4
)

// NTPMsg is a simplified NTP packet carrying the three protocol timestamps;
// the fourth (receive time at the client) is taken on arrival.
type NTPMsg struct {
	Mode       uint8
	T1, T2, T3 sim.Time
}

// NTPMsgLen is the encoded size.
const NTPMsgLen = 25

// AppendNTP appends the encoded message.
func AppendNTP(dst []byte, m NTPMsg) []byte {
	var b [NTPMsgLen]byte
	b[0] = m.Mode
	put64(b[1:], uint64(m.T1))
	put64(b[9:], uint64(m.T2))
	put64(b[17:], uint64(m.T3))
	return append(dst, b[:]...)
}

// ParseNTP decodes a message.
func ParseNTP(b []byte) (NTPMsg, error) {
	if len(b) < NTPMsgLen {
		return NTPMsg{}, ErrTruncated
	}
	return NTPMsg{
		Mode: b[0],
		T1:   sim.Time(be64(b[1:])),
		T2:   sim.Time(be64(b[9:])),
		T3:   sim.Time(be64(b[17:])),
	}, nil
}
