//go:build race

package proto

// poolDebug enables the pool's debug checks in -race builds: released
// payload buffers are poisoned so a component that keeps reading an adopted
// payload after releasing the frame sees garbage immediately instead of
// silently reading whatever the pool's next tenant wrote.
const poolDebug = true

func poisonBuf(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xDD
	}
}
