package tcpstack

import (
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Explicit-state support: a connection's protocol numerics serialize so a
// host can checkpoint flows that were installed at build time. Identity
// (transport, addresses, ports, algorithm, callbacks) does not serialize —
// a restore runs on a freshly constructed, identically configured Conn.

// Remote returns the peer address.
func (c *Conn) Remote() proto.IP { return c.remote }

// LocalPort returns the local TCP port.
func (c *Conn) LocalPort() uint16 { return c.lport }

// RemotePort returns the peer TCP port.
func (c *Conn) RemotePort() uint16 { return c.rport }

// Snapshot appends the connection's mutable protocol state.
func (c *Conn) Snapshot(e *snap.Encoder) {
	e.I64(c.sndUna)
	e.I64(c.sndNxt)
	e.I64(c.total)
	e.F64(c.cwnd)
	e.F64(c.ssthresh)
	e.I64(int64(c.dupAcks))
	e.I64(int64(c.rtoBackoff))
	e.I64(int64(c.srtt))
	e.I64(int64(c.rttvar))
	e.I64(int64(c.rtoDeadline))
	e.Bool(c.rtoPending)
	e.I64(c.measureSeq)
	e.I64(int64(c.measureAt))
	e.Bool(c.measureValid)
	e.F64(c.alpha)
	e.I64(c.winEnd)
	e.I64(c.ackedBytes)
	e.I64(c.markedInWin)
	e.I64(c.lastReduceEnd)
	e.I64(c.rcvNxt)
	e.I64(c.delivered)
	e.Bool(c.done)
	e.U64(c.Retransmits)
	e.U64(c.Timeouts)
}

// Restore loads state captured by Snapshot. The pending-RTO flag restores
// too: the checkpoint's event section re-posts the firing itself, so the
// flag and the event arrive together.
func (c *Conn) Restore(d *snap.Decoder) error {
	c.sndUna = d.I64()
	c.sndNxt = d.I64()
	c.total = d.I64()
	c.cwnd = d.F64()
	c.ssthresh = d.F64()
	c.dupAcks = int(d.I64())
	c.rtoBackoff = int(d.I64())
	c.srtt = sim.Time(d.I64())
	c.rttvar = sim.Time(d.I64())
	c.rtoDeadline = sim.Time(d.I64())
	c.rtoPending = d.Bool()
	c.measureSeq = d.I64()
	c.measureAt = sim.Time(d.I64())
	c.measureValid = d.Bool()
	c.alpha = d.F64()
	c.winEnd = d.I64()
	c.ackedBytes = d.I64()
	c.markedInWin = d.I64()
	c.lastReduceEnd = d.I64()
	c.rcvNxt = d.I64()
	c.delivered = d.I64()
	c.done = d.Bool()
	c.Retransmits = d.U64()
	c.Timeouts = d.U64()
	return d.Err()
}
