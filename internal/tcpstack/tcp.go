// Package tcpstack implements the TCP sender/receiver used throughout
// SplitSim-Go: NewReno-style loss-based congestion control and DCTCP with
// per-packet ECN echo. The stack is transport-agnostic — protocol-level
// hosts (package netsim) execute it with zero host cost, while detailed
// hosts (package hostsim) execute the very same protocol logic with CPU,
// interrupt, and NIC delays layered around it. That mirrors reality: a gem5
// host and an ns-3 node run the same TCP algorithm in different timing
// environments, which is exactly the fidelity difference the paper's
// congestion-control case study measures.
package tcpstack

import (
	"math"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Transport is the environment a Conn runs in.
type Transport interface {
	// Now returns the current virtual time as seen by this endpoint.
	Now() sim.Time
	// Post schedules fn after d with no cancellation handle; the stack's
	// timer logic tolerates stale firings, so the cheaper primitive suffices.
	Post(d sim.Time, fn func())
	// PostRTO schedules c.RTOFire() after d. It exists (instead of the
	// stack posting a bound closure through Post) so transports can record
	// the pending firing as an explicit, serializable event — a checkpoint
	// names the connection, not a func pointer.
	PostRTO(c *Conn, d sim.Time)
	// NewFrame returns a zeroed frame for an outgoing segment, pooled when
	// the transport pools (ownership transfers back via Output).
	NewFrame() *proto.Frame
	// Output transmits a sealed frame toward the remote endpoint.
	Output(f *proto.Frame)
	// LocalIP returns the endpoint address.
	LocalIP() proto.IP
	// LocalMAC returns the endpoint Ethernet address.
	LocalMAC() proto.MAC
}

// CCAlgo selects a congestion-control algorithm.
type CCAlgo int

const (
	// CCReno is NewReno-style loss-based congestion control.
	CCReno CCAlgo = iota
	// CCDCTCP is DCTCP: ECT-marked segments, per-packet ECN echo, and
	// window reduction proportional to the measured marking fraction.
	CCDCTCP
)

func (a CCAlgo) String() string {
	if a == CCDCTCP {
		return "dctcp"
	}
	return "reno"
}

// Model constants.
const (
	// MSS is the maximum segment payload in bytes.
	MSS = 1448
	// initialWindow is IW10.
	initialWindow = 10 * MSS
	// dctcpG is DCTCP's alpha EWMA gain (1/16, per the DCTCP paper).
	dctcpG = 1.0 / 16
	// minRTO bounds the retransmission timeout from below.
	minRTO = 1 * sim.Millisecond
)

// Conn is one side of a simplified unidirectional TCP connection: the
// sender streams data, the receiver returns ACKs with per-segment ECN echo.
// Connections are created pre-established; there is no handshake or
// teardown, matching how the evaluation uses long-lived flows. Loss
// recovery is go-back-N with fast retransmit on three duplicate ACKs and a
// retransmission timeout.
type Conn struct {
	tr     Transport
	remote proto.IP
	rmac   proto.MAC
	lport  uint16
	rport  uint16
	sender bool
	algo   CCAlgo

	// Sender state; sequence numbers are int64 byte offsets internally and
	// truncated to 32 bits on the wire.
	sndUna, sndNxt int64
	total          int64
	cwnd           float64
	ssthresh       float64
	dupAcks        int
	rtoBackoff     int
	srtt, rttvar   sim.Time

	// Lazily re-armed retransmission timer: rtoDeadline is the earliest
	// instant a timeout may act (0 when disarmed), rtoPending whether a
	// posted firing is outstanding. Re-arming updates the deadline; a
	// firing that arrives before it re-posts instead of timing out. That
	// replaces the cancel-and-recreate Timer the previous implementation
	// paid for on every ACK. The firing itself travels through
	// Transport.PostRTO so it stays a serializable record.
	rtoDeadline sim.Time
	rtoPending  bool

	measureSeq   int64
	measureAt    sim.Time
	measureValid bool

	// DCTCP state.
	alpha                   float64
	winEnd                  int64
	ackedBytes, markedInWin int64

	// Reno-ECN state.
	lastReduceEnd int64

	// Receiver state.
	rcvNxt    int64
	delivered int64
	onRecv    func(bytes int)

	onDone func()
	done   bool

	// Statistics.
	Retransmits, Timeouts uint64
}

// NewSender creates the sending side of a flow. bytes is the transfer size
// (0 = run until simulation end); onDone fires when the last byte is
// acknowledged.
func NewSender(tr Transport, remote proto.IP, rmac proto.MAC, lport, rport uint16,
	algo CCAlgo, bytes int64, onDone func()) *Conn {
	if bytes <= 0 {
		bytes = math.MaxInt64 / 2
	}
	return &Conn{
		tr: tr, remote: remote, rmac: rmac, lport: lport, rport: rport,
		sender: true, algo: algo, total: bytes,
		cwnd: initialWindow, ssthresh: math.MaxFloat64 / 4,
		alpha: 1, onDone: onDone,
	}
}

// NewReceiver creates the receiving side of a flow.
func NewReceiver(tr Transport, remote proto.IP, rmac proto.MAC, lport, rport uint16, algo CCAlgo) *Conn {
	return &Conn{tr: tr, remote: remote, rmac: rmac, lport: lport, rport: rport, algo: algo}
}

// OnReceive installs a receiver-side delivery callback.
func (c *Conn) OnReceive(fn func(bytes int)) { c.onRecv = fn }

// StartFlow begins transmission on the sender side.
func (c *Conn) StartFlow() {
	if !c.sender {
		panic("tcpstack: StartFlow on receiver conn")
	}
	c.maybeSend()
}

// Delivered returns in-order bytes delivered at the receiver.
func (c *Conn) Delivered() int64 { return c.delivered }

// Acked returns bytes cumulatively acknowledged at the sender.
func (c *Conn) Acked() int64 { return c.sndUna }

// Cwnd returns the sender congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// Alpha returns the DCTCP marking-fraction estimate.
func (c *Conn) Alpha() float64 { return c.alpha }

// Done reports whether a bounded transfer completed.
func (c *Conn) Done() bool { return c.done }

// Sender reports which side of the flow this conn is.
func (c *Conn) Sender() bool { return c.sender }

// ext64 widens a 32-bit wire sequence number near base.
func ext64(base int64, wire uint32) int64 {
	return base + int64(int32(wire-uint32(base)))
}

func (c *Conn) sendSegment(seq int64, size int, flags uint16, ack int64) {
	f := c.tr.NewFrame()
	f.Eth = proto.Ethernet{Dst: c.rmac, Src: c.tr.LocalMAC()}
	f.IP = proto.IPv4{Src: c.tr.LocalIP(), Dst: c.remote, Proto: proto.IPProtoTCP}
	f.TCP = proto.TCP{
		SrcPort: c.lport, DstPort: c.rport,
		Seq: uint32(seq), Ack: uint32(ack), Flags: flags,
		Window: 65535,
	}
	f.VirtualPayload = size
	if size > 0 && c.algo == CCDCTCP {
		f.IP = f.IP.WithECN(proto.ECNECT0)
	}
	f.Seal()
	c.tr.Output(f)
}

// maybeSend transmits as much as the congestion window allows.
func (c *Conn) maybeSend() {
	if c.done {
		return
	}
	for c.sndNxt < c.total && float64(c.sndNxt-c.sndUna)+MSS <= c.cwnd {
		size := MSS
		if rem := c.total - c.sndNxt; rem < int64(size) {
			size = int(rem)
		}
		c.sendSegment(c.sndNxt, size, 0, 0)
		if !c.measureValid {
			c.measureSeq = c.sndNxt + int64(size)
			c.measureAt = c.tr.Now()
			c.measureValid = true
		}
		c.sndNxt += int64(size)
	}
	c.armRTO()
}

func (c *Conn) rto() sim.Time {
	rto := minRTO
	if c.srtt > 0 {
		if est := c.srtt + 4*c.rttvar; est > rto {
			rto = est
		}
	}
	for i := 0; i < c.rtoBackoff && rto < sim.Second; i++ {
		rto *= 2
	}
	return rto
}

// armRTO (re)sets the retransmission deadline. When a posted firing is
// already outstanding it only moves the deadline — the firing re-posts
// itself if it arrives early — so the common ACK path schedules nothing.
func (c *Conn) armRTO() {
	if c.sndUna >= c.sndNxt {
		c.rtoDeadline = 0 // nothing in flight; a pending firing will no-op
		return
	}
	c.rtoDeadline = c.tr.Now() + c.rto()
	if c.rtoPending {
		return
	}
	c.rtoPending = true
	c.tr.PostRTO(c, c.rto())
}

// RTOFire runs when a posted RTO event arrives: stale or early firings
// re-post or vanish, only a firing at (or past) the live deadline times
// out. Transports invoke it from the event their PostRTO scheduled.
func (c *Conn) RTOFire() {
	c.rtoPending = false
	if c.done || c.rtoDeadline == 0 {
		return
	}
	if now := c.tr.Now(); now < c.rtoDeadline {
		c.rtoPending = true
		c.tr.PostRTO(c, c.rtoDeadline-now)
		return
	}
	c.onRTO()
}

func (c *Conn) onRTO() {
	if c.done || c.sndUna >= c.sndNxt {
		return
	}
	c.Timeouts++
	c.rtoBackoff++
	c.ssthresh = math.Max(c.cwnd/2, 2*MSS)
	c.cwnd = MSS
	c.retransmit()
	c.armRTO()
}

func (c *Conn) retransmit() {
	size := MSS
	if rem := c.total - c.sndUna; rem < int64(size) {
		size = int(rem)
	}
	if size <= 0 {
		return
	}
	c.Retransmits++
	c.measureValid = false // Karn's rule: don't time retransmitted data
	c.sendSegment(c.sndUna, size, 0, 0)
	// Go-back-N: the receiver discards out-of-order segments, so everything
	// past the retransmitted segment must be resent in order too.
	c.sndNxt = c.sndUna + int64(size)
}

// Input delivers an arriving TCP frame to this conn.
func (c *Conn) Input(f *proto.Frame) {
	if c.sender {
		c.handleAck(f)
	} else {
		c.handleData(f)
	}
}

// handleData runs on the receiver: accept in-order data, echo ECN marks.
func (c *Conn) handleData(f *proto.Frame) {
	size := f.PayloadLen()
	if size <= 0 {
		return
	}
	seq := ext64(c.rcvNxt, f.TCP.Seq)
	var flags uint16 = proto.TCPAck
	if f.IP.ECN() == proto.ECNCE {
		flags |= proto.TCPEce
	}
	if seq == c.rcvNxt {
		c.rcvNxt += int64(size)
		c.delivered += int64(size)
		if c.onRecv != nil {
			c.onRecv(size)
		}
	}
	// Cumulative ACK (duplicate when out of order).
	c.sendSegment(0, 0, flags, c.rcvNxt)
}

// handleAck runs on the sender.
func (c *Conn) handleAck(f *proto.Frame) {
	if f.TCP.Flags&proto.TCPAck == 0 {
		return
	}
	ack := ext64(c.sndUna, f.TCP.Ack)
	ece := f.TCP.Flags&proto.TCPEce != 0
	if ack > c.sndNxt {
		ack = c.sndNxt
	}
	if ack > c.sndUna {
		acked := ack - c.sndUna
		c.sndUna = ack
		c.dupAcks = 0
		c.rtoBackoff = 0
		if c.measureValid && c.sndUna >= c.measureSeq {
			c.updateRTT(c.tr.Now() - c.measureAt)
			c.measureValid = false
		}
		c.onAckCC(acked, ece)
		if c.sndUna >= c.total {
			c.finish()
			return
		}
		c.maybeSend()
		return
	}
	// Duplicate ACK.
	c.dupAcks++
	if ece {
		c.noteECE()
	}
	if c.dupAcks == 3 {
		c.ssthresh = math.Max(c.cwnd/2, 2*MSS)
		c.cwnd = c.ssthresh
		c.retransmit()
	}
}

func (c *Conn) finish() {
	c.done = true
	c.rtoDeadline = 0
	if c.onDone != nil {
		c.onDone()
	}
}

func (c *Conn) updateRTT(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	diff := c.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + sample) / 8
}

// onAckCC applies congestion-control reaction to a cumulative ACK.
func (c *Conn) onAckCC(acked int64, ece bool) {
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(acked) // slow start
	} else {
		c.cwnd += MSS * float64(acked) / c.cwnd // congestion avoidance
	}
	if c.algo == CCDCTCP {
		c.ackedBytes += acked
		if ece {
			c.markedInWin += acked
		}
		if c.sndUna >= c.winEnd {
			frac := 0.0
			if c.ackedBytes > 0 {
				frac = float64(c.markedInWin) / float64(c.ackedBytes)
			}
			c.alpha = (1-dctcpG)*c.alpha + dctcpG*frac
			if c.markedInWin > 0 {
				c.cwnd = math.Max(c.cwnd*(1-c.alpha/2), MSS)
				// Congestion observed: leave slow start, or exponential
				// growth would outrun the proportional reduction.
				c.ssthresh = c.cwnd
			}
			c.winEnd = c.sndNxt
			c.ackedBytes, c.markedInWin = 0, 0
		}
		return
	}
	if ece {
		c.noteECE()
	}
}

// noteECE applies classic-ECN halving, at most once per window of data.
func (c *Conn) noteECE() {
	if c.algo != CCReno {
		return
	}
	if c.sndUna > c.lastReduceEnd {
		c.ssthresh = math.Max(c.cwnd/2, 2*MSS)
		c.cwnd = c.ssthresh
		c.lastReduceEnd = c.sndNxt
	}
}
