package tcpstack

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

// benchXport is an allocation-free Transport for steady-state measurement:
// frames come from a pool, in-flight segments ride typed delivery events
// instead of captured closures, and every 64th data segment is dropped so
// fast retransmit keeps the congestion window in a bounded Reno sawtooth
// (an unperturbed lossless flow would grow its window — and the event
// queue — without limit).
type benchXport struct {
	sched *sim.Scheduler
	pool  proto.FramePool
	ip    proto.IP
	mac   proto.MAC
	delay sim.Time
	peer  *benchXport
	conn  *Conn
	sink  benchSink

	segs    uint64
	dropMod uint64 // drop every dropMod-th data segment; 0 disables
}

// benchSink delivers a frame to its owning endpoint's conn and releases it;
// the stack never retains input frames.
type benchSink struct{ x *benchXport }

func (k *benchSink) Deliver(_ sim.Time, m sim.Payload) {
	f := m.(*proto.Frame)
	k.x.conn.Input(f)
	f.Release()
}

func (x *benchXport) Now() sim.Time               { return x.sched.Now() }
func (x *benchXport) Post(d sim.Time, fn func())  { x.sched.Post(x.sched.Now()+d, fn) }
func (x *benchXport) PostRTO(c *Conn, d sim.Time) { x.sched.Post(x.sched.Now()+d, c.RTOFire) }
func (x *benchXport) NewFrame() *proto.Frame      { return x.pool.Get() }
func (x *benchXport) LocalIP() proto.IP           { return x.ip }
func (x *benchXport) LocalMAC() proto.MAC         { return x.mac }

func (x *benchXport) Output(f *proto.Frame) {
	if x.dropMod > 0 && f.PayloadLen() > 0 {
		x.segs++
		if x.segs%x.dropMod == 0 {
			f.Release()
			return
		}
	}
	x.sched.PostDelivery(x.sched.Now()+x.delay, x.sched.ID(), &x.peer.sink, f)
}

// benchFlow wires an unbounded Reno sender and its receiver over the
// allocation-free transport and runs it past slow start.
func benchFlow() (*Conn, *sim.Scheduler) {
	s := sim.NewScheduler(0)
	a := &benchXport{sched: s, ip: proto.HostIP(1), mac: proto.MACFromID(1),
		delay: 50 * sim.Microsecond, dropMod: 64}
	b := &benchXport{sched: s, ip: proto.HostIP(2), mac: proto.MACFromID(2),
		delay: 50 * sim.Microsecond}
	a.peer, b.peer = b, a
	a.sink.x, b.sink.x = a, b
	snd := NewSender(a, b.ip, b.mac, 1000, 2000, CCReno, 0, nil)
	rcv := NewReceiver(b, a.ip, a.mac, 2000, 1000, CCReno)
	a.conn, b.conn = snd, rcv
	snd.StartFlow()
	s.RunUntil(100 * sim.Millisecond) // settle into the loss-bounded sawtooth
	return snd, s
}

// stepAcked advances the simulation until at least `bytes` more payload has
// been cumulatively acknowledged.
func stepAcked(snd *Conn, s *sim.Scheduler, bytes int64) {
	target := snd.Acked() + bytes
	for snd.Acked() < target {
		if !s.Step() {
			panic("tcpstack bench: flow stalled")
		}
	}
}

// BenchmarkSubstrateTCPSegment measures the per-segment cost of the TCP
// stack at steady state: one op pushes 64 KiB of acknowledged payload
// (~45 segments) through segment build, transport delivery, receiver data
// handling, ACK generation, and sender ACK processing.
func BenchmarkSubstrateTCPSegment(b *testing.B) {
	snd, s := benchFlow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepAcked(snd, s, 64*1024)
	}
}

// TestSubstrateTCPSegmentZeroAlloc asserts the steady-state segment path
// allocates nothing: pooled frames, prebound RTO firings, typed deliveries.
func TestSubstrateTCPSegmentZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	snd, s := benchFlow()
	// Extra settling so the frame pool and event queue reach their
	// steady-state high-water marks before accounting starts.
	stepAcked(snd, s, 1<<20)
	if avg := testing.AllocsPerRun(100, func() { stepAcked(snd, s, 64*1024) }); avg != 0 {
		t.Fatalf("TCP segment path allocates %.2f per 64KiB chunk, want 0", avg)
	}
}
