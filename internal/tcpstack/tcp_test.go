package tcpstack

import (
	"testing"
	"testing/quick"

	"repro/internal/proto"
	"repro/internal/sim"
)

// loop is a deterministic in-memory transport pair: frames sent by one
// endpoint arrive at the other after a fixed delay, optionally filtered
// (for loss/marking injection).
type loop struct {
	sched *sim.Scheduler
	a, b  *endpoint
	delay sim.Time
	// mangle, when set, can drop (return nil) or modify frames in flight.
	mangle func(f *proto.Frame) *proto.Frame
}

type endpoint struct {
	l    *loop
	ip   proto.IP
	peer *endpoint
	conn *Conn
}

func newLoop(delay sim.Time) *loop {
	l := &loop{sched: sim.NewScheduler(0), delay: delay}
	l.a = &endpoint{l: l, ip: proto.HostIP(1)}
	l.b = &endpoint{l: l, ip: proto.HostIP(2)}
	l.a.peer = l.b
	l.b.peer = l.a
	return l
}

func (e *endpoint) Now() sim.Time { return e.l.sched.Now() }
func (e *endpoint) Post(d sim.Time, fn func()) {
	e.l.sched.Post(e.l.sched.Now()+d, fn)
}
func (e *endpoint) PostRTO(c *Conn, d sim.Time) {
	e.l.sched.Post(e.l.sched.Now()+d, c.RTOFire)
}
func (e *endpoint) NewFrame() *proto.Frame { return &proto.Frame{} }
func (e *endpoint) LocalIP() proto.IP      { return e.ip }
func (e *endpoint) LocalMAC() proto.MAC    { return proto.MACFromID(uint32(e.ip)) }
func (e *endpoint) Output(f *proto.Frame) {
	peer := e.peer
	if e.l.mangle != nil {
		f = e.l.mangle(f)
		if f == nil {
			return
		}
	}
	e.l.sched.At(e.l.sched.Now()+e.l.delay, func() { peer.conn.Input(f) })
}

func (l *loop) run(until sim.Time) { l.sched.RunBefore(until) }

// flow wires a sender on a and receiver on b.
func (l *loop) flow(algo CCAlgo, bytes int64, onDone func()) (*Conn, *Conn) {
	snd := NewSender(l.a, l.b.ip, l.b.LocalMAC(), 1000, 2000, algo, bytes, onDone)
	rcv := NewReceiver(l.b, l.a.ip, l.a.LocalMAC(), 2000, 1000, algo)
	l.a.conn = snd
	l.b.conn = rcv
	return snd, rcv
}

func TestBoundedTransferCompletes(t *testing.T) {
	l := newLoop(50 * sim.Microsecond)
	done := false
	snd, rcv := l.flow(CCReno, 200_000, func() { done = true })
	snd.StartFlow()
	l.run(sim.Second)
	if !done || !snd.Done() {
		t.Fatalf("transfer incomplete: acked=%d", snd.Acked())
	}
	if rcv.Delivered() != 200_000 {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
	if snd.Retransmits != 0 || snd.Timeouts != 0 {
		t.Fatalf("lossless path had rtx=%d to=%d", snd.Retransmits, snd.Timeouts)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	l := newLoop(100 * sim.Microsecond)
	snd, _ := l.flow(CCReno, 0, nil)
	snd.StartFlow()
	if snd.Cwnd() != initialWindow {
		t.Fatalf("initial cwnd %v", snd.Cwnd())
	}
	// After one RTT of acks, cwnd has roughly doubled (slow start).
	l.run(250 * sim.Microsecond)
	if snd.Cwnd() < 1.8*initialWindow {
		t.Fatalf("cwnd after 1 RTT = %.0f, want ~2x initial", snd.Cwnd())
	}
}

func TestLossTriggersFastRetransmit(t *testing.T) {
	l := newLoop(50 * sim.Microsecond)
	dropped := false
	l.mangle = func(f *proto.Frame) *proto.Frame {
		// Drop exactly one data segment mid-flow.
		if !dropped && f.PayloadLen() > 0 && f.TCP.Seq == 5*MSS {
			dropped = true
			return nil
		}
		return f
	}
	snd, rcv := l.flow(CCReno, 300_000, nil)
	snd.StartFlow()
	l.run(sim.Second)
	if !dropped {
		t.Fatal("drop never applied")
	}
	if snd.Retransmits == 0 {
		t.Fatal("no retransmit after loss")
	}
	if snd.Timeouts != 0 {
		t.Fatalf("fast retransmit should beat the RTO, got %d timeouts", snd.Timeouts)
	}
	if rcv.Delivered() != 300_000 {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
}

func TestTimeoutRecoversTailLoss(t *testing.T) {
	l := newLoop(50 * sim.Microsecond)
	// Drop the very last segment's first transmission: nothing follows it,
	// so no duplicate ACKs arrive and only the RTO can recover it.
	const total = 100_000
	lastSeq := uint32(total - total%MSS) // 99912
	dropped := false
	l.mangle = func(f *proto.Frame) *proto.Frame {
		if !dropped && f.PayloadLen() > 0 && f.TCP.Seq == lastSeq {
			dropped = true
			return nil
		}
		return f
	}
	done := false
	snd, _ := l.flow(CCReno, total, func() { done = true })
	snd.StartFlow()
	l.run(sim.Second)
	if !dropped {
		t.Fatal("tail segment never sent")
	}
	if !done {
		t.Fatalf("tail loss not recovered; timeouts=%d", snd.Timeouts)
	}
	if snd.Timeouts == 0 {
		t.Fatal("tail loss must recover via RTO")
	}
}

func TestDCTCPEchoAndAlpha(t *testing.T) {
	l := newLoop(50 * sim.Microsecond)
	// Mark every 4th data segment CE.
	n := 0
	l.mangle = func(f *proto.Frame) *proto.Frame {
		if f.PayloadLen() > 0 && f.IP.ECN() == proto.ECNECT0 {
			n++
			if n%4 == 0 {
				f.IP = f.IP.WithECN(proto.ECNCE)
			}
		}
		return f
	}
	snd, rcv := l.flow(CCDCTCP, 2_000_000, nil)
	snd.StartFlow()
	l.run(sim.Second)
	if rcv.Delivered() != 2_000_000 {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
	// Alpha should estimate the ~25% marking fraction.
	if a := snd.Alpha(); a < 0.1 || a > 0.5 {
		t.Fatalf("alpha = %v, want ~0.25", a)
	}
	if snd.Retransmits != 0 {
		t.Fatal("marking must not cause retransmits")
	}
}

func TestDCTCPSetsECT(t *testing.T) {
	l := newLoop(10 * sim.Microsecond)
	sawECT, sawNotECT := false, false
	l.mangle = func(f *proto.Frame) *proto.Frame {
		if f.PayloadLen() > 0 {
			if f.IP.ECN() == proto.ECNECT0 {
				sawECT = true
			}
		} else if f.IP.ECN() == proto.ECNNotECT {
			sawNotECT = true // pure ACKs are not ECT
		}
		return f
	}
	snd, _ := l.flow(CCDCTCP, 50_000, nil)
	snd.StartFlow()
	l.run(100 * sim.Millisecond)
	if !sawECT || !sawNotECT {
		t.Fatalf("ECT marking wrong: data-ECT=%v ack-notECT=%v", sawECT, sawNotECT)
	}
}

func TestRenoHalvesOnECE(t *testing.T) {
	l := newLoop(50 * sim.Microsecond)
	markFrom := 20 * sim.Microsecond
	l.mangle = func(f *proto.Frame) *proto.Frame {
		// After warmup, mark every data segment (Reno+ECN halves once per
		// window, not once per mark).
		if f.PayloadLen() > 0 && l.sched.Now() > markFrom {
			f.IP = f.IP.WithECN(proto.ECNCE)
		}
		return f
	}
	// Reno ignores CE unless it negotiated ECN; our receiver echoes ECE on
	// CE regardless, and the Reno sender halves at most once per window.
	snd, _ := l.flow(CCReno, 0, nil)
	snd.StartFlow()
	l.run(2 * sim.Millisecond)
	before := snd.Cwnd()
	l.run(4 * sim.Millisecond)
	after := snd.Cwnd()
	// Repeated halving bounded: cwnd stays above 2 MSS and does not
	// collapse to zero.
	if after < 2*MSS {
		t.Fatalf("cwnd collapsed to %v", after)
	}
	_ = before
}

func TestSRTTEstimation(t *testing.T) {
	l := newLoop(100 * sim.Microsecond)
	snd, _ := l.flow(CCReno, 500_000, nil)
	snd.StartFlow()
	l.run(20 * sim.Millisecond)
	// RTT is exactly 200us on this loop (no queueing in the mock).
	if s := snd.SRTT(); s < 180*sim.Microsecond || s > 230*sim.Microsecond {
		t.Fatalf("srtt = %v, want ~200us", s)
	}
}

func TestExt64Property(t *testing.T) {
	f := func(baseRaw uint32, deltaRaw uint16, negative bool) bool {
		base := int64(baseRaw)
		delta := int64(deltaRaw)
		if negative {
			delta = -delta
		}
		target := base + delta
		if target < 0 {
			return true
		}
		return ext64(base, uint32(target)) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnboundedFlowRunsForever(t *testing.T) {
	l := newLoop(20 * sim.Microsecond)
	// Mark every 8th segment so DCTCP keeps the window bounded — the mock
	// transport has no bandwidth limit to do it.
	n := 0
	l.mangle = func(f *proto.Frame) *proto.Frame {
		if f.PayloadLen() > 0 {
			n++
			if n%8 == 0 {
				f.IP = f.IP.WithECN(proto.ECNCE)
			}
		}
		return f
	}
	snd, rcv := l.flow(CCDCTCP, 0, nil)
	snd.StartFlow()
	l.run(5 * sim.Millisecond)
	if snd.Done() {
		t.Fatal("unbounded flow reported done")
	}
	if rcv.Delivered() == 0 {
		t.Fatal("no progress")
	}
	first := rcv.Delivered()
	l.run(10 * sim.Millisecond)
	if rcv.Delivered() <= first {
		t.Fatal("flow stalled")
	}
}

func TestStartFlowOnReceiverPanics(t *testing.T) {
	l := newLoop(20 * sim.Microsecond)
	_, rcv := l.flow(CCReno, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("StartFlow on receiver should panic")
		}
	}()
	rcv.StartFlow()
}

func TestAlgoString(t *testing.T) {
	if CCReno.String() != "reno" || CCDCTCP.String() != "dctcp" {
		t.Fatal("CCAlgo strings")
	}
}
