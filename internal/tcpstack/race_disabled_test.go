//go:build !race

package tcpstack

// raceEnabled is off in regular builds; see race_enabled_test.go.
const raceEnabled = false
