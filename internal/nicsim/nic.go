// Package nicsim is the behavioral NIC model — the analog of the SimBricks
// i40e_bm simulator for the Intel X710. It models descriptor-ring DMA
// latency, wire serialization at the configured link rate, interrupt
// latency, hardware RX/TX timestamping, and a PTP hardware clock (PHC)
// driven by its own imperfect oscillator.
//
// A NIC is one SplitSim component with two channel attachments: the PCI
// side toward its host simulator and the Ethernet side toward the network.
package nicsim

import (
	"repro/internal/core"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Params configures the behavioral model.
type Params struct {
	// Rate is the wire rate in bits per second.
	Rate int64
	// TxDMA is the latency from doorbell to the frame being ready to
	// serialize (descriptor fetch + payload DMA read).
	TxDMA sim.Time
	// RxDMA is the latency from last bit on the wire to the frame being
	// visible in host memory (DMA write + completion).
	RxDMA sim.Time
	// PHCDriftPPM is the frequency error of the NIC oscillator backing the
	// PTP hardware clock.
	PHCDriftPPM float64
	// PHCReadLatency models the PCIe register-read round trip handling
	// inside the NIC (the channel adds its own latency both ways).
	PHCReadLatency sim.Time
	// PHCQuantum is the hardware clock's timestamp granularity; reads and
	// hardware timestamps are quantized to it (the X710 stamps at ~8 ns).
	PHCQuantum sim.Time
	// IRQModeration batches received frames: an interrupt fires (and the
	// batch is DMA'd up) at most once per this interval, like the i40e
	// rx-usecs setting. Zero delivers per frame after RxDMA.
	IRQModeration sim.Time
}

// DefaultParams returns an i40e-like 10G configuration.
func DefaultParams() Params {
	return Params{
		Rate:           10 * sim.Gbps,
		TxDMA:          900 * sim.Nanosecond,
		RxDMA:          900 * sim.Nanosecond,
		PHCDriftPPM:    0,
		PHCReadLatency: 300 * sim.Nanosecond,
		PHCQuantum:     8 * sim.Nanosecond,
	}
}

// NIC is the behavioral NIC component.
type NIC struct {
	name string
	env  core.Env
	cost core.CostAccount
	p    Params

	hostPort core.Port // toward the host (PCI channel)
	netPort  core.Port // toward the network (Ethernet channel)

	txBusyUntil sim.Time

	// curBatch is the interrupt-moderation batch currently accumulating;
	// its flush event is already scheduled. nil when no batch is open.
	curBatch *pci.RxBatch

	// freeTx recycles the per-frame transmit descriptors parked in the
	// scheduler between doorbell and wire departure.
	freeTx []*txPend

	// txSink and rxSink are the typed-delivery sinks for wire departure and
	// DMA-complete events — one queue slot per event, no closures.
	txSink nicTxSink
	rxSink nicRxSink

	// PHC state: hardware clock = offset + trueTime*(1+drift) plus a
	// frequency correction that only applies from phcBase forward (a servo
	// retune must not retroactively shift past timestamps).
	phcOffset  sim.Time
	phcFreqAdj float64  // ppm, applied by ptp4l's servo
	phcBase    sim.Time // true time the current frequency correction started

	// Statistics.
	TxFrames, RxFrames uint64
}

// Simulation-cost model (see EXPERIMENTS.md): the behavioral NIC simulator
// is cheap per packet and nearly free when idle.
const (
	// CostPerPacketNs is charged per TX or RX frame.
	CostPerPacketNs = 600
	// TimeTaxNsPerUs is the background simulation cost per virtual
	// microsecond (polling loops, sync).
	TimeTaxNsPerUs = 2.0
)

// New creates a NIC.
func New(name string, p Params) *NIC {
	n := &NIC{name: name, p: p}
	n.txSink.n = n
	n.rxSink.n = n
	return n
}

// txPend is a frame between doorbell and wire departure, parked in the
// scheduler as a typed delivery payload.
type txPend struct {
	frame []byte
	id    uint64
	stamp bool
}

// Size implements core.Message.
func (p *txPend) Size() int { return len(p.frame) }

// nicTxSink handles wire-departure events: the frame goes out the Ethernet
// port and the completion goes back over PCI.
type nicTxSink struct{ n *NIC }

// Deliver implements core.Sink.
func (k *nicTxSink) Deliver(at sim.Time, m core.Message) {
	n := k.n
	p := m.(*txPend)
	n.netPort.Send(proto.GetWireFrame(p.frame))
	d := pci.GetTxDone()
	d.ID = p.id
	if p.stamp {
		d.HWTime = n.PHC(at)
	}
	n.hostPort.Send(d)
	p.frame = nil
	n.freeTx = append(n.freeTx, p)
}

// nicRxSink handles DMA-complete events: the accumulated batch crosses the
// PCI channel in one message.
type nicRxSink struct{ n *NIC }

// Deliver implements core.Sink.
func (k *nicRxSink) Deliver(_ sim.Time, m core.Message) {
	n := k.n
	b := m.(*pci.RxBatch)
	if b == n.curBatch {
		n.curBatch = nil
	}
	n.hostPort.Send(b)
}

// Name implements core.Component.
func (n *NIC) Name() string { return n.name }

// Attach implements core.Component.
func (n *NIC) Attach(env core.Env) { n.env = env }

// Start implements core.Component.
func (n *NIC) Start(end sim.Time) {}

// Cost implements core.Coster.
func (n *NIC) Cost() *core.CostAccount { return &n.cost }

// TimeTaxNsPerVirtualUs implements core timing-tax reporting for the
// makespan model.
func (n *NIC) TimeTaxNsPerVirtualUs() float64 { return TimeTaxNsPerUs }

// BindHost sets the PCI-side outgoing port.
func (n *NIC) BindHost(p core.Port) { n.hostPort = p }

// BindNet sets the Ethernet-side outgoing port.
func (n *NIC) BindNet(p core.Port) { n.netPort = p }

// PHC returns the hardware clock reading at true time t, quantized to the
// clock's timestamp granularity.
func (n *NIC) PHC(t sim.Time) sim.Time {
	v := n.phcOffset + t +
		sim.Time(n.p.PHCDriftPPM*float64(t)/1e6) +
		sim.Time(n.phcFreqAdj*float64(t-n.phcBase)/1e6)
	if q := n.p.PHCQuantum; q > 1 {
		v -= v % q
	}
	return v
}

// SetPHCOffset steps the hardware clock (ptp4l's clock_adjtime analog).
func (n *NIC) SetPHCOffset(delta sim.Time) { n.phcOffset += delta }

// AdjPHCFreq accumulates a frequency correction in ppm (ptp4l's servo),
// folding the old correction's accumulated phase into the offset so the
// change applies only from now on.
func (n *NIC) AdjPHCFreq(deltaPPM float64) {
	now := n.env.Now()
	n.phcOffset += sim.Time(n.phcFreqAdj * float64(now-n.phcBase) / 1e6)
	n.phcBase = now
	n.phcFreqAdj += deltaPPM
}

// PHCFreqAdjPPM returns the applied frequency correction.
func (n *NIC) PHCFreqAdjPPM() float64 { return n.phcFreqAdj }

// HostSink returns the sink for messages arriving from the host over PCI.
func (n *NIC) HostSink() core.Sink { return core.SinkFunc(n.fromHost) }

// NetSink returns the sink for frames arriving from the network.
func (n *NIC) NetSink() core.Sink { return core.SinkFunc(n.fromNet) }

// fromHost handles PCI messages from the host.
func (n *NIC) fromHost(at sim.Time, m core.Message) {
	switch msg := m.(type) {
	case *pci.TxBatch:
		for i := range msg.Subs {
			n.cost.Charge(CostPerPacketNs)
			n.transmit(msg.Subs[i])
		}
		pci.PutTxBatch(msg)
	case pci.TxSubmit:
		n.cost.Charge(CostPerPacketNs)
		n.transmit(msg)
	case pci.PHCRead:
		n.env.After(n.p.PHCReadLatency, func() {
			n.hostPort.Send(pci.PHCValue{ID: msg.ID, HWTime: n.PHC(n.env.Now())})
		})
	default:
		panic("nicsim: unexpected host message")
	}
}

// transmit models DMA fetch then wire serialization, then emits the frame
// toward the network and a TxDone (with hardware timestamp if requested)
// toward the host.
func (n *NIC) transmit(msg pci.TxSubmit) {
	ready := n.env.Now() + n.p.TxDMA
	start := ready
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	depart := start + sim.TransmitTime(proto.RawWireLen(msg.Frame), n.p.Rate)
	n.txBusyUntil = depart
	n.TxFrames++
	var p *txPend
	if k := len(n.freeTx); k > 0 {
		p = n.freeTx[k-1]
		n.freeTx = n.freeTx[:k-1]
	} else {
		p = &txPend{}
	}
	p.frame, p.id, p.stamp = msg.Frame, msg.ID, msg.Timestamp
	n.env.PostDelivery(depart, &n.txSink, p)
}

// fromNet handles frames arriving on the wire: timestamp at arrival, DMA to
// host memory, deliver an RxBatch.
//
// Without moderation every frame ships in its own single-entry batch: two
// frames can arrive in distinct same-instant events with an unrelated NIC
// event (say a TxDone) ordered between their DMA completions, so coalescing
// them would reorder the PCI stream. With moderation the old code emitted
// the whole batch as consecutive sends from one flush event — nothing could
// interleave — so a single multi-frame message is exactly order-preserving.
func (n *NIC) fromNet(at sim.Time, m core.Message) {
	n.cost.Charge(CostPerPacketNs)
	n.RxFrames++
	var frame []byte
	switch v := m.(type) {
	case *proto.WireFrame:
		frame = v.B
		proto.PutWireFrame(v)
	case proto.RawFrame:
		frame = v
	default:
		panic("nicsim: expected an encoded frame on the wire")
	}
	pkt := pci.RxPacket{Frame: frame, HWTime: n.PHC(at)}
	if n.p.IRQModeration <= 0 {
		b := pci.GetRxBatch()
		b.Pkts = append(b.Pkts, pkt)
		n.env.PostDelivery(at+n.p.RxDMA, &n.rxSink, b)
		return
	}
	if n.curBatch == nil {
		n.curBatch = pci.GetRxBatch()
		n.env.PostDelivery(at+n.p.IRQModeration+n.p.RxDMA, &n.rxSink, n.curBatch)
	}
	n.curBatch.Pkts = append(n.curBatch.Pkts, pkt)
}
