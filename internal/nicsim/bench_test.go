package nicsim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
)

// drainPort is a recycling sink for NIC output: it returns every pooled
// message to its pool immediately, the way the real host/network peers do,
// so the benchmarks measure the NIC path itself at steady state.
type drainPort struct{ n int }

func (d *drainPort) Send(m core.Message) {
	d.n++
	switch v := m.(type) {
	case *pci.RxBatch:
		pci.PutRxBatch(v)
	case *pci.TxDone:
		pci.PutTxDone(v)
	case *proto.WireFrame:
		proto.PutWireFrame(v)
	}
}
func (d *drainPort) Latency() sim.Time { return sim.Nanosecond }

// benchNIC builds a NIC with recycling ports on both sides.
func benchNIC(p nicsim.Params) (*nicsim.NIC, *drainPort, *drainPort, *sim.Scheduler) {
	s := sim.NewScheduler(0)
	n := nicsim.New("nic", p)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Time(1) << 62)
	host := &drainPort{}
	net := &drainPort{}
	n.BindHost(host)
	n.BindNet(net)
	return n, host, net, s
}

// BenchmarkSubstrateNICTx measures one doorbell-to-wire transmit per op:
// a pooled TxBatch crosses the PCI boundary, the frame serializes out the
// Ethernet port, and the TxDone completion returns.
func BenchmarkSubstrateNICTx(b *testing.B) {
	nic, _, _, s := benchNIC(nicsim.DefaultParams())
	fb := frameBytes(1400)
	sink := nic.HostSink()
	op := func() {
		tb := pci.GetTxBatch()
		tb.Subs = append(tb.Subs, pci.TxSubmit{ID: 1, Frame: fb})
		sink.Deliver(s.Now(), tb)
		s.Run()
	}
	for i := 0; i < 64; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

// BenchmarkSubstrateNICRx measures one wire-to-host receive per op: an
// encoded frame arrives, is hardware-timestamped, DMAs up after RxDMA, and
// crosses the PCI boundary as a single-entry RxBatch.
func BenchmarkSubstrateNICRx(b *testing.B) {
	nic, _, _, s := benchNIC(nicsim.DefaultParams())
	fb := frameBytes(1400)
	sink := nic.NetSink()
	op := func() {
		sink.Deliver(s.Now(), proto.GetWireFrame(fb))
		s.Run()
	}
	for i := 0; i < 64; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

// TestSubstrateNICZeroAlloc asserts both NIC directions run allocation-free
// at steady state: pooled batches, pooled completions, recycled transmit
// descriptors, and typed delivery events.
func TestSubstrateNICZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	nic, _, _, s := benchNIC(nicsim.DefaultParams())
	fb := frameBytes(1400)
	hostSink := nic.HostSink()
	netSink := nic.NetSink()
	tx := func() {
		tb := pci.GetTxBatch()
		tb.Subs = append(tb.Subs, pci.TxSubmit{ID: 1, Frame: fb})
		hostSink.Deliver(s.Now(), tb)
		s.Run()
	}
	rx := func() {
		netSink.Deliver(s.Now(), proto.GetWireFrame(fb))
		s.Run()
	}
	for i := 0; i < 64; i++ {
		tx()
		rx()
	}
	if avg := testing.AllocsPerRun(200, tx); avg != 0 {
		t.Fatalf("NIC tx path allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, rx); avg != 0 {
		t.Fatalf("NIC rx path allocates %.2f/op, want 0", avg)
	}
}
