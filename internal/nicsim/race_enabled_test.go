//go:build race

package nicsim_test

// raceEnabled lets allocation-accounting tests skip under -race, where the
// detector's own bookkeeping shows up in testing.AllocsPerRun.
const raceEnabled = true
