package nicsim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
)

// recorder captures messages a port sends, with timestamps.
type recorder struct {
	sched *sim.Scheduler
	msgs  []core.Message
	at    []sim.Time
}

func (r *recorder) Send(m core.Message) {
	r.msgs = append(r.msgs, m)
	r.at = append(r.at, r.sched.Now())
}
func (r *recorder) Latency() sim.Time { return sim.Nanosecond }

// rig builds a NIC with recorder ports on both sides.
func rig(p nicsim.Params) (*nicsim.NIC, *recorder, *recorder, *sim.Scheduler) {
	s := sim.NewScheduler(0)
	n := nicsim.New("nic", p)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Second)
	host := &recorder{sched: s}
	net := &recorder{sched: s}
	n.BindHost(host)
	n.BindNet(net)
	return n, host, net, s
}

// frameBytes builds a small encoded UDP frame of the given virtual size.
func frameBytes(virtual int) []byte {
	f := &proto.Frame{
		Eth:            proto.Ethernet{Dst: proto.MACFromID(2), Src: proto.MACFromID(1)},
		IP:             proto.IPv4{Src: proto.HostIP(1), Dst: proto.HostIP(2), Proto: proto.IPProtoUDP},
		UDP:            proto.UDP{SrcPort: 1, DstPort: 2},
		VirtualPayload: virtual,
	}
	f.Seal()
	return proto.AppendFrame(nil, f)
}

func TestTxPathTiming(t *testing.T) {
	p := nicsim.DefaultParams()
	nic, host, net, s := rig(p)
	b := frameBytes(1400)
	nic.HostSink().Deliver(0, pci.TxSubmit{ID: 1, Frame: b})
	s.Run()
	if len(net.msgs) != 1 {
		t.Fatalf("net got %d frames", len(net.msgs))
	}
	// Departure = TxDMA + serialization of the TRUE wire length (virtual
	// payload included): 1442B at 10G = 1153.6ns.
	want := p.TxDMA + sim.TransmitTime(proto.RawWireLen(b), p.Rate)
	if net.at[0] != want {
		t.Fatalf("departure at %v, want %v", net.at[0], want)
	}
	// TxDone accompanies the departure.
	if len(host.msgs) != 1 {
		t.Fatalf("host got %d messages", len(host.msgs))
	}
	if _, ok := host.msgs[0].(*pci.TxDone); !ok {
		t.Fatalf("expected *TxDone, got %T", host.msgs[0])
	}
}

func TestTxSerializationQueues(t *testing.T) {
	p := nicsim.DefaultParams()
	nic, _, net, s := rig(p)
	b := frameBytes(1400)
	// Two frames submitted back to back must serialize, not overlap.
	nic.HostSink().Deliver(0, pci.TxSubmit{ID: 1, Frame: b})
	nic.HostSink().Deliver(0, pci.TxSubmit{ID: 2, Frame: b})
	s.Run()
	if len(net.msgs) != 2 {
		t.Fatalf("net got %d frames", len(net.msgs))
	}
	gap := net.at[1] - net.at[0]
	want := sim.TransmitTime(proto.RawWireLen(b), p.Rate)
	if gap != want {
		t.Fatalf("inter-departure gap %v, want serialization time %v", gap, want)
	}
}

func TestRxPathAndTimestamp(t *testing.T) {
	p := nicsim.DefaultParams()
	p.PHCDriftPPM = 100
	nic, host, _, s := rig(p)
	arrive := 1 * sim.Millisecond
	s.At(arrive, func() {
		nic.NetSink().Deliver(arrive, proto.RawFrame(frameBytes(0)))
	})
	s.Run()
	if len(host.msgs) != 1 {
		t.Fatalf("host got %d messages", len(host.msgs))
	}
	batch := host.msgs[0].(*pci.RxBatch)
	if len(batch.Pkts) != 1 {
		t.Fatalf("unmoderated rx batch has %d packets, want 1", len(batch.Pkts))
	}
	rx := batch.Pkts[0]
	// Delivered after RxDMA.
	if host.at[0] != arrive+p.RxDMA {
		t.Fatalf("rx delivered at %v, want %v", host.at[0], arrive+p.RxDMA)
	}
	// HW timestamp taken at wire arrival on the drifting, quantized PHC.
	want := nic.PHC(arrive)
	if rx.HWTime != want {
		t.Fatalf("hw timestamp %v, want %v", rx.HWTime, want)
	}
	if rx.HWTime%p.PHCQuantum != 0 {
		t.Fatalf("timestamp %v not quantized to %v", rx.HWTime, p.PHCQuantum)
	}
}

func TestIRQModerationBatches(t *testing.T) {
	p := nicsim.DefaultParams()
	p.IRQModeration = 20 * sim.Microsecond
	nic, host, _, s := rig(p)
	// Three frames arrive 1us apart; one interrupt delivers all three.
	for i := 0; i < 3; i++ {
		at := sim.Time(i) * sim.Microsecond
		s.At(at, func() { nic.NetSink().Deliver(at, proto.RawFrame(frameBytes(0))) })
	}
	s.Run()
	// One interrupt crosses the PCI channel carrying all three frames.
	if len(host.msgs) != 1 {
		t.Fatalf("host got %d messages", len(host.msgs))
	}
	batch := host.msgs[0].(*pci.RxBatch)
	if len(batch.Pkts) != 3 {
		t.Fatalf("batch has %d packets, want 3", len(batch.Pkts))
	}
	// Delivered at first arrival + moderation + DMA.
	if want := p.IRQModeration + p.RxDMA; host.at[0] != want {
		t.Fatalf("batch delivered at %v, want %v", host.at[0], want)
	}
	// Hardware timestamps still reflect individual wire arrivals.
	t0 := batch.Pkts[0].HWTime
	t2 := batch.Pkts[2].HWTime
	if t2 <= t0 {
		t.Fatal("batched frames should keep distinct hw timestamps")
	}
}

func TestPHCReadAndServo(t *testing.T) {
	p := nicsim.DefaultParams()
	p.PHCDriftPPM = 50
	nic, host, _, s := rig(p)
	nic.HostSink().Deliver(0, pci.PHCRead{ID: 9})
	s.Run()
	v := host.msgs[0].(pci.PHCValue)
	if v.ID != 9 {
		t.Fatalf("PHC read id %d", v.ID)
	}
	// Servo: step and frequency-correct; future readings track true time.
	now := s.Now()
	err := nic.PHC(now) - now
	nic.SetPHCOffset(-err)
	nic.AdjPHCFreq(-50)
	later := now + sim.Second
	diff := nic.PHC(later) - later
	if diff < 0 {
		diff = -diff
	}
	if diff > p.PHCQuantum {
		t.Fatalf("residual PHC error %v after servo correction", diff)
	}
}

func TestFreqAdjDoesNotJumpPhase(t *testing.T) {
	p := nicsim.DefaultParams()
	nic, _, _, s := rig(p)
	s.RunUntil(100 * sim.Millisecond)
	before := nic.PHC(s.Now())
	nic.AdjPHCFreq(100) // retune must not retroactively shift the clock
	after := nic.PHC(s.Now())
	if before != after {
		t.Fatalf("frequency adjustment jumped the phase: %v -> %v", before, after)
	}
}

func TestCostAndTax(t *testing.T) {
	p := nicsim.DefaultParams()
	nic, _, _, s := rig(p)
	nic.HostSink().Deliver(0, pci.TxSubmit{ID: 1, Frame: frameBytes(0)})
	s.Run()
	if nic.Cost().BusyNanos() == 0 {
		t.Fatal("no cost accounted")
	}
	if nic.TimeTaxNsPerVirtualUs() <= 0 {
		t.Fatal("missing time tax")
	}
	if nic.TxFrames != 1 {
		t.Fatalf("TxFrames = %d", nic.TxFrames)
	}
}
