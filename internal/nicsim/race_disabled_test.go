//go:build !race

package nicsim_test

// raceEnabled is off in regular builds; see race_enabled_test.go.
const raceEnabled = false
