package main

import (
	"strings"
	"testing"

	"repro/internal/profiler"
)

// TestLogPipeline exercises the parse→analyze→render path the tool wraps,
// on a synthetic log in the exact on-disk format.
func TestLogPipeline(t *testing.T) {
	log := strings.Join([]string{
		"splitsim-prof sim=net wall=0 virt=0 ep=x.a peer=host wait=0 proc=0 txd=0 txs=0 rxd=0 rxs=0",
		"splitsim-prof sim=host wall=0 virt=0 ep=x.b peer=net wait=0 proc=0 txd=0 txs=0 rxd=0 rxs=0",
		"splitsim-prof sim=net wall=1000000 virt=1000000000 ep=x.a peer=host wait=900000 proc=1000 txd=5 txs=10 rxd=5 rxs=10",
		"splitsim-prof sim=host wall=1000000 virt=1000000000 ep=x.b peer=net wait=10000 proc=1000 txd=5 txs=10 rxd=5 rxs=10",
	}, "\n")
	samples, err := profiler.ParseLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	a, err := profiler.Analyze(samples, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// "host" barely waits: it is the bottleneck.
	if b := a.Bottlenecks(0.15); len(b) != 1 || b[0] != "host" {
		t.Fatalf("bottlenecks = %v", b)
	}
	g := profiler.BuildWTPG(a)
	dot := g.DOT()
	for _, want := range []string{`"net" -> "host"`, `"host" -> "net"`, "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	// Simulation speed: 1ms virtual over 1ms wall.
	if a.SimSpeed < 0.99 || a.SimSpeed > 1.01 {
		t.Fatalf("speed = %v", a.SimSpeed)
	}
}
