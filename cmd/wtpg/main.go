// Command wtpg is the profiler post-processing tool: it ingests the
// periodic adapter logs a profiled SplitSim run emits, drops warm-up and
// cool-down samples, and renders the wait-time-profile graph — as Graphviz
// DOT or as text — together with the global simulation speed and
// per-simulator efficiency.
//
//	wtpg [-warm 2] [-cool 2] [-format dot|text] [logfile]
//
// With no file argument it reads standard input.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profiler"
)

func main() {
	warm := flag.Int("warm", 2, "warm-up samples to drop per simulator")
	cool := flag.Int("cool", 2, "cool-down samples to drop per simulator")
	format := flag.String("format", "text", "output format: text or dot")
	thresh := flag.Float64("bottleneck", 0.15, "wait fraction below which a node is flagged")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	samples, err := profiler.ParseLog(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}
	a, err := profiler.Analyze(samples, *warm, *cool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	g := profiler.BuildWTPG(a)
	switch *format {
	case "dot":
		fmt.Print(g.DOT())
	case "text":
		fmt.Print(a.String())
		fmt.Print(g.Render())
		if b := a.Bottlenecks(*thresh); len(b) > 0 {
			fmt.Printf("probable bottlenecks: %v\n", b)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
