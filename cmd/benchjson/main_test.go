package main

import (
	"strings"
	"testing"
)

func TestBaselineForPrefersSameMachine(t *testing.T) {
	hist := []Entry{
		{Rev: "PR1", Machine: "8x cpuA"},
		{Rev: "PR2", Machine: "4x cpuB"},
		{Rev: "PR3", Machine: "8x cpuA"},
	}
	prev, skipped := baselineFor(hist, "PR4", "8x cpuA")
	if prev == nil || prev.Rev != "PR3" || skipped != 0 {
		t.Fatalf("prev=%v skipped=%d, want PR3 skipped=0", prev, skipped)
	}
	// The newest same-machine entry wins even when newer foreign-machine
	// entries exist.
	prev, skipped = baselineFor(hist, "PR4", "4x cpuB")
	if prev == nil || prev.Rev != "PR2" || skipped != 1 {
		t.Fatalf("prev=%v skipped=%d, want PR2 skipped=1", prev, skipped)
	}
	// Same-rev entries never serve as their own baseline.
	prev, skipped = baselineFor(hist, "PR3", "8x cpuA")
	if prev == nil || prev.Rev != "PR1" {
		t.Fatalf("prev=%v, want PR1", prev)
	}
	// Foreign machines only: no baseline, but the caller can tell history
	// was non-empty.
	prev, skipped = baselineFor(hist, "PR4", "16x cpuC")
	if prev != nil || skipped != 3 {
		t.Fatalf("prev=%v skipped=%d, want nil skipped=3", prev, skipped)
	}
	// Legacy entries without a fingerprint still match each other.
	legacy := []Entry{{Rev: "PR1"}, {Rev: "PR2"}}
	prev, _ = baselineFor(legacy, "PR2", "")
	if prev == nil || prev.Rev != "PR1" {
		t.Fatalf("legacy prev=%v, want PR1", prev)
	}
}

func TestHigherBetter(t *testing.T) {
	cases := map[string]bool{
		"pkts/s":     true, // throughput rate
		"flows/s":    true,
		"endpoints":  true,  // fabric capacity
		"x-events":   true,  // speedup ratio
		"bytes/host": false, // footprint: lower is better
		"fct-ns":     false,
		"ms/build":   false,
	}
	for unit, want := range cases {
		if got := higherBetter(unit); got != want {
			t.Errorf("higherBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

// TestReportDirectionAwareMetrics checks that custom metrics are flagged in
// their bad direction only: a >20% throughput drop and a >20% footprint
// rise regress; the same moves in the good direction do not.
func TestReportDirectionAwareMetrics(t *testing.T) {
	prev := &Entry{Rev: "PR1", Results: map[string]Result{
		"BenchmarkScaleMixed1M": {NsOp: 100, Metrics: map[string]float64{
			"pkts/s":     1000, // will drop 50% — flag
			"endpoints":  1e6,  // unchanged
			"bytes/host": 100,  // will rise 50% — flag
		}},
		"BenchmarkOther": {NsOp: 100, Metrics: map[string]float64{
			"pkts/s":     1000, // will rise 50% — improvement, no flag
			"bytes/host": 100,  // will drop 50% — improvement, no flag
			"new/s":      0,    // appears only in cur — no flag
		}},
	}}
	cur := Entry{Rev: "PR2", Results: map[string]Result{
		"BenchmarkScaleMixed1M": {NsOp: 100, Metrics: map[string]float64{
			"pkts/s":     500,
			"endpoints":  1e6,
			"bytes/host": 150,
		}},
		"BenchmarkOther": {NsOp: 100, Metrics: map[string]float64{
			"pkts/s":     1500,
			"bytes/host": 50,
			"new/s":      42,
		}},
	}}
	var b strings.Builder
	got := report(&b, "scale", prev, cur, 20)
	if got != 2 {
		t.Fatalf("report flagged %d regressions, want 2 (pkts/s drop + bytes/host rise)\n%s", got, b.String())
	}
	out := b.String()
	if c := strings.Count(out, "REGRESSION"); c != 2 {
		t.Fatalf("output has %d REGRESSION marks, want 2:\n%s", c, out)
	}
	for _, frag := range []string{"pkts/s", "bytes/host", "-50.0%", "+50.0%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestReportNsOpAndMetricBothCount checks a benchmark can contribute both
// an ns/op regression and a metric regression to the flagged total.
func TestReportNsOpAndMetricBothCount(t *testing.T) {
	prev := &Entry{Rev: "PR1", Results: map[string]Result{
		"BenchmarkX": {NsOp: 100, Metrics: map[string]float64{"pkts/s": 1000}},
	}}
	cur := Entry{Rev: "PR2", Results: map[string]Result{
		"BenchmarkX": {NsOp: 200, Metrics: map[string]float64{"pkts/s": 100}},
	}}
	var b strings.Builder
	if got := report(&b, "s", prev, cur, 20); got != 2 {
		t.Fatalf("report = %d, want 2 (ns/op + pkts/s)\n%s", got, b.String())
	}
}

func TestMachineFingerprintShape(t *testing.T) {
	fp := machineFingerprint()
	if !strings.Contains(fp, "x ") || strings.HasPrefix(fp, "0x") {
		t.Fatalf("fingerprint %q should read like \"<cores>x <model>\"", fp)
	}
}
