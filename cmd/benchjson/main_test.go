package main

import (
	"strings"
	"testing"
)

func TestBaselineForPrefersSameMachine(t *testing.T) {
	hist := []Entry{
		{Rev: "PR1", Machine: "8x cpuA"},
		{Rev: "PR2", Machine: "4x cpuB"},
		{Rev: "PR3", Machine: "8x cpuA"},
	}
	prev, skipped := baselineFor(hist, "PR4", "8x cpuA")
	if prev == nil || prev.Rev != "PR3" || skipped != 0 {
		t.Fatalf("prev=%v skipped=%d, want PR3 skipped=0", prev, skipped)
	}
	// The newest same-machine entry wins even when newer foreign-machine
	// entries exist.
	prev, skipped = baselineFor(hist, "PR4", "4x cpuB")
	if prev == nil || prev.Rev != "PR2" || skipped != 1 {
		t.Fatalf("prev=%v skipped=%d, want PR2 skipped=1", prev, skipped)
	}
	// Same-rev entries never serve as their own baseline.
	prev, skipped = baselineFor(hist, "PR3", "8x cpuA")
	if prev == nil || prev.Rev != "PR1" {
		t.Fatalf("prev=%v, want PR1", prev)
	}
	// Foreign machines only: no baseline, but the caller can tell history
	// was non-empty.
	prev, skipped = baselineFor(hist, "PR4", "16x cpuC")
	if prev != nil || skipped != 3 {
		t.Fatalf("prev=%v skipped=%d, want nil skipped=3", prev, skipped)
	}
	// Legacy entries without a fingerprint still match each other.
	legacy := []Entry{{Rev: "PR1"}, {Rev: "PR2"}}
	prev, _ = baselineFor(legacy, "PR2", "")
	if prev == nil || prev.Rev != "PR1" {
		t.Fatalf("legacy prev=%v, want PR1", prev)
	}
}

func TestMachineFingerprintShape(t *testing.T) {
	fp := machineFingerprint()
	if !strings.Contains(fp, "x ") || strings.HasPrefix(fp, "0x") {
		t.Fatalf("fingerprint %q should read like \"<cores>x <model>\"", fp)
	}
}
