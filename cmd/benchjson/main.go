// Command benchjson converts `go test -bench` output into the repository's
// benchmark-baseline files (BENCH_link.json, BENCH_sched.json). It reads
// benchmark lines on stdin, averages repeated -count runs per benchmark,
// and appends (or replaces) one revision entry in the output file, so the
// committed JSON accumulates a perf trajectory across PRs:
//
//	go test -run '^$' -bench . -count 3 ./internal/link/ |
//	    go run ./cmd/benchjson -suite link -rev PR1 -out BENCH_link.json
//
// scripts/bench.sh wraps both suites.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is the averaged measurement for one benchmark.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
}

// Entry is one revision's worth of results.
type Entry struct {
	Rev     string            `json:"rev"`
	Date    string            `json:"date"`
	Go      string            `json:"go,omitempty"`
	Results map[string]Result `json:"results"`
}

// File is the on-disk baseline format.
type File struct {
	Suite   string  `json:"suite"`
	Unit    string  `json:"unit"`
	History []Entry `json:"history"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	suite := flag.String("suite", "", "suite name recorded in the file (e.g. link, sched)")
	out := flag.String("out", "", "output JSON file to create or append to")
	rev := flag.String("rev", "", "revision label for this entry (e.g. PR1, a git hash)")
	flag.Parse()
	if *suite == "" || *out == "" || *rev == "" {
		fmt.Fprintln(os.Stderr, "usage: benchjson -suite NAME -out FILE.json -rev LABEL < bench-output")
		os.Exit(2)
	}

	type acc struct {
		ns, b, allocs float64
		n             int
	}
	sums := map[string]*acc{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goos:") {
			continue
		}
		if strings.HasPrefix(line, "cpu:") {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := sums[m[1]]
		if a == nil {
			a = &acc{}
			sums[m[1]] = a
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		a.ns += ns
		if m[4] != "" {
			bo, _ := strconv.ParseFloat(m[4], 64)
			a.b += bo
		}
		if m[5] != "" {
			al, _ := strconv.ParseFloat(m[5], 64)
			a.allocs += al
		}
		a.n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	entry := Entry{
		Rev:     *rev,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		Results: map[string]Result{},
	}
	for name, a := range sums {
		entry.Results[name] = Result{
			NsOp:     round2(a.ns / float64(a.n)),
			BOp:      round2(a.b / float64(a.n)),
			AllocsOp: round2(a.allocs / float64(a.n)),
			Runs:     a.n,
		}
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	f.Suite = *suite
	f.Unit = "ns/op"
	// Replace an existing entry with the same rev, else append.
	replaced := false
	for i := range f.History {
		if f.History[i].Rev == *rev {
			f.History[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		f.History = append(f.History, entry)
	}

	// encoding/json sorts map keys, so entries diff stably across runs.
	buf, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (rev %s)\n",
		len(entry.Results), *out, *rev)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
