// Command benchjson converts `go test -bench` output into the repository's
// benchmark-baseline files (BENCH_link.json, BENCH_sched.json, ...). It
// reads benchmark lines on stdin, averages repeated -count runs per
// benchmark, and appends (or replaces) one revision entry in the output
// file, so the committed JSON accumulates a perf trajectory across PRs:
//
//	go test -run '^$' -bench . -count 3 ./internal/link/ |
//	    go run ./cmd/benchjson -suite link -rev PR1 -out BENCH_link.json
//
// After writing, it diffs the new entry against the latest entry recorded
// for any other revision and prints a per-benchmark regression report,
// flagging ns/op slowdowns beyond -regress-pct (default 20%). Custom
// b.ReportMetric units are diffed direction-aware: throughput-style units
// ("/s" rates, "endpoints", "x"-prefixed ratios) are flagged when they
// *drop* past the threshold, everything else (latency-style) when it
// rises. With -fail-on-regress the process exits non-zero on a flagged
// regression; CI runs it that way as a non-blocking advisory step.
//
// A second mode reads nothing from stdin and instead re-runs the regression
// diff over already-committed baseline files — every suite at once:
//
//	go run ./cmd/benchjson -report              # all BENCH_*.json
//	go run ./cmd/benchjson -report BENCH_link.json BENCH_netsim.json
//
// For each file the newest entry is compared against the newest entry with
// a different revision label, exactly the comparison the recording mode
// prints, so the cross-suite perf state of the tree is one command away.
//
// scripts/bench.sh wraps all suites.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the averaged measurement for one benchmark. Metrics holds
// custom b.ReportMetric units (e.g. "pkts/s", "bytes/host") beyond the
// standard trio.
type Result struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Runs     int                `json:"runs"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one revision's worth of results. Machine fingerprints the
// recording host: ns/op from different machines are not comparable, so the
// regression diff only runs against a baseline with an identical
// fingerprint.
type Entry struct {
	Rev     string            `json:"rev"`
	Date    string            `json:"date"`
	Go      string            `json:"go,omitempty"`
	Machine string            `json:"machine,omitempty"`
	Results map[string]Result `json:"results"`
}

// File is the on-disk baseline format.
type File struct {
	Suite   string  `json:"suite"`
	Unit    string  `json:"unit"`
	History []Entry `json:"history"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	suite := flag.String("suite", "", "suite name recorded in the file (e.g. link, sched)")
	out := flag.String("out", "", "output JSON file to create or append to")
	rev := flag.String("rev", "", "revision label for this entry (e.g. PR1, a git hash)")
	regressPct := flag.Float64("regress-pct", 20, "ns/op slowdown (in percent) vs the previous entry flagged as a regression")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit non-zero when a benchmark regresses past -regress-pct")
	reportMode := flag.Bool("report", false, "diff committed baseline files (args, default BENCH_*.json) instead of reading bench output")
	flag.Parse()
	if *reportMode {
		os.Exit(reportFiles(flag.Args(), *regressPct, *failOnRegress))
	}
	if *suite == "" || *out == "" || *rev == "" {
		fmt.Fprintln(os.Stderr, "usage: benchjson -suite NAME -out FILE.json -rev LABEL < bench-output\n       benchjson -report [FILE.json ...]")
		os.Exit(2)
	}

	type acc struct {
		ns, b, allocs float64
		metrics       map[string]float64
		n             int
	}
	sums := map[string]*acc{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goos:") {
			continue
		}
		if strings.HasPrefix(line, "cpu:") {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := sums[m[1]]
		if a == nil {
			a = &acc{metrics: map[string]float64{}}
			sums[m[1]] = a
		}
		// Past "name count", a bench line is (value, unit) pairs: ns/op
		// first, then any b.ReportMetric units (alphabetical), then the
		// optional B/op and allocs/op from -benchmem.
		fields := strings.Fields(line)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.b += v
			case "allocs/op":
				a.allocs += v
			default:
				a.metrics[fields[i+1]] += v
			}
		}
		a.n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	entry := Entry{
		Rev:     *rev,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		Machine: machineFingerprint(),
		Results: map[string]Result{},
	}
	for name, a := range sums {
		r := Result{
			NsOp:     round2(a.ns / float64(a.n)),
			BOp:      round2(a.b / float64(a.n)),
			AllocsOp: round2(a.allocs / float64(a.n)),
			Runs:     a.n,
		}
		if len(a.metrics) > 0 {
			r.Metrics = map[string]float64{}
			for unit, sum := range a.metrics {
				r.Metrics[unit] = round2(sum / float64(a.n))
			}
		}
		entry.Results[name] = r
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	f.Suite = *suite
	f.Unit = "ns/op"
	// The newest same-machine entry with a different rev label is the
	// comparison baseline: diff before mutating history so re-running under
	// the same rev keeps comparing against the true predecessor.
	prev, skipped := baselineFor(f.History, *rev, entry.Machine)
	// Replace an existing entry with the same rev, else append.
	replaced := false
	for i := range f.History {
		if f.History[i].Rev == *rev {
			f.History[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		f.History = append(f.History, entry)
	}
	regressions := 0
	if prev == nil && skipped > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s: no same-machine baseline for %q (%d entr%s from other machines); regression diff skipped\n",
			*suite, entry.Machine, skipped, plural(skipped, "y", "ies"))
	} else {
		regressions = report(os.Stderr, *suite, prev, entry, *regressPct)
	}

	// encoding/json sorts map keys, so entries diff stably across runs.
	buf, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (rev %s)\n",
		len(entry.Results), *out, *rev)
	if regressions > 0 && *failOnRegress {
		os.Exit(3)
	}
}

// reportFiles is the -report mode: for every named baseline file (all
// BENCH_*.json in the working directory when none are named) it diffs the
// newest entry against the newest entry recorded under a different revision
// and prints the same per-benchmark report the recording mode does. The
// return value is the process exit code: 0 clean, 3 when failOnRegress is
// set and any suite regressed, 1 on unreadable input.
func reportFiles(files []string, regressPct float64, failOnRegress bool) int {
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -report: no BENCH_*.json files found")
			return 1
		}
		sort.Strings(files)
	}
	regressions := 0
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			return 1
		}
		if len(f.History) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: empty history\n", f.Suite)
			continue
		}
		cur := f.History[len(f.History)-1]
		prev, skipped := baselineFor(f.History[:len(f.History)-1], cur.Rev, cur.Machine)
		fmt.Fprintf(os.Stderr, "benchjson: %s: rev %s (%s)\n", f.Suite, cur.Rev, cur.Date)
		if prev == nil && skipped > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no same-machine baseline for %q (%d entr%s from other machines); regression diff skipped\n",
				f.Suite, cur.Machine, skipped, plural(skipped, "y", "ies"))
			continue
		}
		regressions += report(os.Stderr, f.Suite, prev, cur, regressPct)
	}
	if regressions > 0 && failOnRegress {
		return 3
	}
	return 0
}

// machineFingerprint identifies the benchmarking host well enough to keep
// cross-machine ns/op comparisons out of the regression report: the
// schedulable core count plus the CPU model from /proc/cpuinfo (the
// architecture when that is unavailable, e.g. off Linux).
func machineFingerprint() string {
	model := runtime.GOARCH
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			name, value, ok := strings.Cut(line, ":")
			if ok && strings.TrimSpace(name) == "model name" {
				model = strings.TrimSpace(value)
				break
			}
		}
	}
	return fmt.Sprintf("%dx %s", runtime.GOMAXPROCS(0), model)
}

// baselineFor picks the regression baseline from history: the newest entry
// whose rev differs from rev and whose machine fingerprint equals machine.
// skipped counts different-rev entries rejected for being from another
// machine — when no baseline exists the caller distinguishes "first entry
// ever" (skipped == 0) from "only foreign-machine history" (skipped > 0).
func baselineFor(history []Entry, rev, machine string) (prev *Entry, skipped int) {
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Rev == rev {
			continue
		}
		if history[i].Machine == machine {
			return &history[i], skipped
		}
		skipped++
	}
	return nil, skipped
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// report diffs entry against prev (the latest committed entry for another
// revision) and prints one line per benchmark with the ns/op delta,
// flagging slowdowns beyond regressPct. Custom metrics recorded on both
// sides are diffed too, direction-aware (see higherBetter); a metric that
// moved past the threshold in its bad direction gets its own flagged line
// under the benchmark. It returns the number of flagged regressions.
// Benchmarks or metrics present on only one side are reported but never
// flagged: added or removed measurements are not slowdowns.
func report(w io.Writer, suite string, prev *Entry, cur Entry, regressPct float64) int {
	if prev == nil {
		fmt.Fprintf(w, "benchjson: %s: no previous entry to diff against\n", suite)
		return 0
	}
	names := make([]string, 0, len(cur.Results))
	for name := range cur.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "benchjson: %s: diff vs rev %s (%s)\n", suite, prev.Rev, prev.Date)
	regressions := 0
	for _, name := range names {
		c := cur.Results[name]
		p, ok := prev.Results[name]
		if !ok || p.NsOp == 0 {
			fmt.Fprintf(w, "  %-40s %10.2f ns/op  (new benchmark)%s\n",
				name, c.NsOp, metricsSuffix(c.Metrics))
			continue
		}
		pct := (c.NsOp - p.NsOp) / p.NsOp * 100
		flag := ""
		if pct > regressPct {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-40s %10.2f -> %10.2f ns/op  %+6.1f%%%s%s\n",
			name, p.NsOp, c.NsOp, pct, flag, metricsSuffix(c.Metrics))
		regressions += reportMetrics(w, p.Metrics, c.Metrics, regressPct)
	}
	for name := range prev.Results {
		if _, ok := cur.Results[name]; !ok {
			fmt.Fprintf(w, "  %-40s (removed)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %s: %d measurement(s) regressed more than %.0f%%\n",
			suite, regressions, regressPct)
	}
	return regressions
}

// higherBetter classifies a custom metric unit's good direction. Rates
// ("pkts/s", "flows/s", ...), capacity counts ("endpoints"), and
// "x"-prefixed speedup ratios ("x-events") improve upward; everything
// else — latencies, byte footprints — improves downward, matching ns/op.
func higherBetter(unit string) bool {
	return strings.Contains(unit, "/s") || unit == "endpoints" || strings.HasPrefix(unit, "x")
}

// reportMetrics diffs one benchmark's custom metrics direction-aware and
// prints a flagged line per metric that moved past regressPct in its bad
// direction: a drop for higher-better units, a rise for the rest. Returns
// the number of flagged metrics.
func reportMetrics(w io.Writer, prev, cur map[string]float64, regressPct float64) int {
	units := make([]string, 0, len(cur))
	for u := range cur {
		units = append(units, u)
	}
	sort.Strings(units)
	regressions := 0
	for _, u := range units {
		pv, ok := prev[u]
		if !ok || pv == 0 {
			continue
		}
		pct := (cur[u] - pv) / pv * 100
		bad := pct > regressPct
		if higherBetter(u) {
			bad = pct < -regressPct
		}
		if bad {
			fmt.Fprintf(w, "    %-38s %10.4g -> %10.4g %-10s %+6.1f%%  REGRESSION\n",
				"", pv, cur[u], u, pct)
			regressions++
		}
	}
	return regressions
}

// metricsSuffix renders custom metrics as "  [pkts/s=1.2e+06 ...]" on the
// benchmark's ns/op line; direction-aware flagging happens in
// reportMetrics.
func metricsSuffix(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	parts := make([]string, len(units))
	for i, u := range units {
		parts[i] = fmt.Sprintf("%s=%.4g", u, m[u])
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
