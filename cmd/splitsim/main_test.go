package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestCatalogCoversEveryFigure(t *testing.T) {
	cat := catalog()
	for _, want := range []string{
		"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"clocksync", "configeffort",
	} {
		if _, ok := cat[want]; !ok {
			t.Errorf("catalog missing %q", want)
		}
	}
	if len(names()) != len(cat) {
		t.Error("names() incomplete")
	}
}

func TestNamesSorted(t *testing.T) {
	ns := names()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("names not sorted: %v", ns)
		}
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	// Smoke-run the cheap entries through the same path the CLI uses.
	opts := experiments.Options{Scale: 0.3, Seed: 1}
	for _, name := range []string{"table1", "fig7"} {
		out, err := catalog()[name](opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(strings.ToLower(out), strings.TrimPrefix(name, "")) &&
			len(out) < 40 {
			t.Fatalf("%s output suspiciously short:\n%s", name, out)
		}
	}
}
