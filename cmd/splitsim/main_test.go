package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestCatalogCoversEveryFigure(t *testing.T) {
	cat := catalog()
	for _, want := range []string{
		"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"clocksync", "configeffort", "placement", "scale", "scaleout",
	} {
		if _, ok := cat[want]; !ok {
			t.Errorf("catalog missing %q", want)
		}
	}
	if len(names()) != len(cat) {
		t.Error("names() incomplete")
	}
}

func TestNamesSorted(t *testing.T) {
	ns := names()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("names not sorted: %v", ns)
		}
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	// Smoke-run the cheap entries through the same path the CLI uses.
	opts := experiments.Options{Scale: 0.3, Seed: 1}
	for _, name := range []string{"table1", "fig7"} {
		out, err := catalog()[name](opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(strings.ToLower(out), strings.TrimPrefix(name, "")) &&
			len(out) < 40 {
			t.Fatalf("%s output suspiciously short:\n%s", name, out)
		}
	}
}

func TestCheckPlacement(t *testing.T) {
	cases := []struct {
		exp, placement string
		ok             bool
	}{
		{"placement", "", true},
		{"placement", "ac", true},
		{"placement", "auto", true},
		{"placement", "percomp", false},
		{"fig7", "percomp", true},
		{"fig8", "s", true},
		{"fig7", "cr2", false},
		{"fig4", "s", false},
		{"fig4", "", true},
	}
	for _, c := range cases {
		err := checkPlacement(c.exp, c.placement)
		if (err == nil) != c.ok {
			t.Errorf("checkPlacement(%q, %q) = %v, want ok=%v",
				c.exp, c.placement, err, c.ok)
		}
	}
	// Every plannable and placement-taking experiment must exist in the catalog.
	cat := catalog()
	for exp := range placementsFor() {
		if _, ok := cat[exp]; !ok {
			t.Errorf("placementsFor lists unknown experiment %q", exp)
		}
	}
	for _, exp := range plannable() {
		if _, ok := cat[exp]; !ok {
			t.Errorf("plannable lists unknown experiment %q", exp)
		}
	}
}

func TestParseOpts(t *testing.T) {
	o := parseOpts("run", []string{"-scale", "0.5", "-seed", "7", "-placement", "auto"})
	if o.Scale != 0.5 || o.Seed != 7 || o.Placement != "auto" {
		t.Fatalf("parseOpts mismatch: %+v", o)
	}
	o = parseOpts("plan", nil)
	if o.Scale != 1.0 || o.Seed != 42 || o.Placement != "" {
		t.Fatalf("parseOpts defaults mismatch: %+v", o)
	}
}

func TestPlanSubcommandOutput(t *testing.T) {
	// The plan subcommand goes through experiments.PlanFor; exercise the
	// same path here so the CLI wiring is covered without spawning a process.
	opts := experiments.Options{Scale: 0.3, Seed: 1, Placement: "s"}
	out, err := experiments.PlanFor("placement", opts)
	if err != nil {
		t.Fatalf("PlanFor(placement): %v", err)
	}
	if !strings.Contains(out, "1 groups") {
		t.Fatalf("co-located plan should have 1 group:\n%s", out)
	}
}
