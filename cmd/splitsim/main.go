// Command splitsim runs the paper's evaluation experiments and prints
// their tables/series. It is the orchestration entry point a user drives:
//
//	splitsim list
//	splitsim run fig4 [-scale 1.0] [-seed 42]
//	splitsim run placement [-placement ac]
//	splitsim run all  [-scale 0.1]
//	splitsim plan fig8 [-placement auto]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

type runner func(opts experiments.Options) (string, error)

func catalog() map[string]runner {
	return map[string]runner{
		"table1": func(experiments.Options) (string, error) {
			return experiments.Table1(), nil
		},
		"fig4": func(o experiments.Options) (string, error) {
			return experiments.Fig4(o).String(), nil
		},
		"fig5": func(o experiments.Options) (string, error) {
			return experiments.Fig5(o).String(), nil
		},
		"fig6": func(o experiments.Options) (string, error) {
			return experiments.Fig6(o).String(), nil
		},
		"clocksync": func(o experiments.Options) (string, error) {
			return experiments.ClockSync(o).String(), nil
		},
		"fig7": func(o experiments.Options) (string, error) {
			return experiments.Fig7(o).String(), nil
		},
		"fig8": func(o experiments.Options) (string, error) {
			return experiments.Fig8(o).String(), nil
		},
		"fig9": func(o experiments.Options) (string, error) {
			return experiments.Fig9(o).String(), nil
		},
		"fig10": func(o experiments.Options) (string, error) {
			return experiments.Fig10(o).String(), nil
		},
		"placement": func(o experiments.Options) (string, error) {
			r, err := experiments.PlacementStudy(o)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
		"scale": func(o experiments.Options) (string, error) {
			return experiments.Scale(o).String(), nil
		},
		"flowsim": func(o experiments.Options) (string, error) {
			r, err := experiments.Flowsim(o)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
		"scaleout": func(o experiments.Options) (string, error) {
			r, err := experiments.ScaleOut(o)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
		"warmstart": func(o experiments.Options) (string, error) {
			r, err := experiments.WarmStart(o)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
		"configeffort": func(experiments.Options) (string, error) {
			r, err := experiments.ConfigEffort(".")
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
	}
}

func names() []string {
	var out []string
	for name := range catalog() {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// placementsFor maps each experiment to the -placement values it accepts.
// Experiments absent from the map reject the flag.
func placementsFor() map[string][]string {
	return map[string][]string{
		"placement": experiments.PlacementNames(),
		"fig7":      {"s", "percomp", "auto"},
		"fig8":      {"s", "percomp", "auto"},
	}
}

// plannable lists the experiments `splitsim plan` can render.
func plannable() []string { return []string{"fig7", "fig8", "placement"} }

// checkPlacement validates a -placement value against an experiment.
func checkPlacement(exp, placement string) error {
	if placement == "" {
		return nil
	}
	allowed, ok := placementsFor()[exp]
	if !ok {
		return fmt.Errorf("experiment %q does not take -placement", exp)
	}
	for _, a := range allowed {
		if a == placement {
			return nil
		}
	}
	return fmt.Errorf("experiment %q accepts -placement %s, not %q",
		exp, strings.Join(allowed, "|"), placement)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  splitsim list                      list available experiments
  splitsim run <name|all> [flags]    run an experiment
  splitsim plan <name> [flags]       print an experiment's execution plan

flags for run and plan:
  -scale f       duration/topology scale (default 1.0 = paper scale)
  -seed n        random seed (default 42)
  -placement p   execution placement (placement: %s; fig7/fig8: s|percomp|auto)
  -parallel      run placed groups on real cores (pinned threads, batched sync windows)
  -optimistic[=K]  speculate K sync windows past the committed horizon (placed runs; bare flag = default depth)
  -checkpoint-at us     warmup horizon in microseconds for checkpointing experiments (warmstart)
  -checkpoint-file f    write the captured checkpoint to f
  -restore-file f       resume from a checkpoint file instead of simulating the warmup
  -hosts n       target endpoint count for scale/flowsim (e.g. -hosts 1000000; 0 = scale-derived)
  -bg t          background-traffic tier for scale/flowsim: "flow" = flow-level fluid tier

experiments: %v
plannable: %v
`, strings.Join(experiments.PlacementNames(), "|"), names(), plannable())
	os.Exit(2)
}

// parseOpts reads the shared run/plan flags from args.
func parseOpts(cmd string, args []string) experiments.Options {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "duration/topology scale")
	seed := fs.Uint64("seed", 42, "random seed")
	placement := fs.String("placement", "", "execution placement")
	parallel := fs.Bool("parallel", false, "multi-core executor for placed runs")
	var optimistic optimisticFlag
	fs.Var(&optimistic, "optimistic", "optimistic executor for placed runs; =K sets speculation depth")
	ckAt := fs.Float64("checkpoint-at", 0, "warmup horizon in microseconds (checkpointing experiments)")
	ckFile := fs.String("checkpoint-file", "", "write the captured checkpoint here")
	restore := fs.String("restore-file", "", "resume from this checkpoint file")
	hosts := fs.Int("hosts", 0, "target endpoint count for the scale experiments (0 = scale-derived)")
	bg := fs.String("bg", "", "background-traffic tier for scale experiments: flow")
	_ = fs.Parse(args)
	if *bg != "" && *bg != "flow" {
		fail("-bg accepts \"flow\", not %q", *bg)
	}
	return experiments.Options{Scale: *scale, Seed: *seed, Placement: *placement, Parallel: *parallel,
		Optimistic: optimistic.on, OptimisticK: optimistic.k,
		CheckpointAt: sim.Time(*ckAt * float64(sim.Microsecond)),
		CheckpointFile: *ckFile, RestoreFile: *restore,
		Hosts: *hosts, Bg: *bg}
}

// optimisticFlag implements -optimistic[=K]: bare -optimistic enables the
// optimistic executor at its default speculation depth, -optimistic=K (K > 0)
// sets the depth explicitly, -optimistic=false disables it.
type optimisticFlag struct {
	on bool
	k  int
}

func (f *optimisticFlag) String() string {
	if !f.on {
		return "false"
	}
	if f.k > 0 {
		return strconv.Itoa(f.k)
	}
	return "true"
}

func (f *optimisticFlag) IsBoolFlag() bool { return true }

func (f *optimisticFlag) Set(s string) error {
	switch s {
	case "", "true":
		f.on, f.k = true, 0
		return nil
	case "false":
		f.on, f.k = false, 0
		return nil
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 {
		return fmt.Errorf("want true, false, or a window count >= 1, got %q", s)
	}
	f.on, f.k = true, k
	return nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, n := range names() {
			fmt.Println(n)
		}
	case "run":
		if len(os.Args) < 3 {
			usage()
		}
		name := os.Args[2]
		opts := parseOpts("run", os.Args[3:])
		cat := catalog()
		run := func(n string) {
			r, ok := cat[n]
			if !ok {
				fail("unknown experiment %q; try: %v", n, names())
			}
			if err := checkPlacement(n, opts.Placement); err != nil {
				fail("%v", err)
			}
			out, err := r(opts)
			if err != nil {
				fail("%s: %v", n, err)
			}
			fmt.Println(out)
		}
		if name == "all" {
			if opts.Placement != "" {
				fail("-placement applies to a single experiment, not all")
			}
			for _, n := range names() {
				run(n)
			}
			return
		}
		run(name)
	case "plan":
		if len(os.Args) < 3 {
			usage()
		}
		name := os.Args[2]
		opts := parseOpts("plan", os.Args[3:])
		if err := checkPlacement(name, opts.Placement); err != nil {
			fail("%v", err)
		}
		out, err := experiments.PlanFor(name, opts)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(out)
	default:
		usage()
	}
}
