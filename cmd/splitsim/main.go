// Command splitsim runs the paper's evaluation experiments and prints
// their tables/series. It is the orchestration entry point a user drives:
//
//	splitsim list
//	splitsim run fig4 [-scale 1.0] [-seed 42]
//	splitsim run all  [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

type runner func(opts experiments.Options) (string, error)

func catalog() map[string]runner {
	return map[string]runner{
		"table1": func(experiments.Options) (string, error) {
			return experiments.Table1(), nil
		},
		"fig4": func(o experiments.Options) (string, error) {
			return experiments.Fig4(o).String(), nil
		},
		"fig5": func(o experiments.Options) (string, error) {
			return experiments.Fig5(o).String(), nil
		},
		"fig6": func(o experiments.Options) (string, error) {
			return experiments.Fig6(o).String(), nil
		},
		"clocksync": func(o experiments.Options) (string, error) {
			return experiments.ClockSync(o).String(), nil
		},
		"fig7": func(o experiments.Options) (string, error) {
			return experiments.Fig7(o).String(), nil
		},
		"fig8": func(o experiments.Options) (string, error) {
			return experiments.Fig8(o).String(), nil
		},
		"fig9": func(o experiments.Options) (string, error) {
			return experiments.Fig9(o).String(), nil
		},
		"fig10": func(o experiments.Options) (string, error) {
			return experiments.Fig10(o).String(), nil
		},
		"scaleout": func(o experiments.Options) (string, error) {
			r, err := experiments.ScaleOut(o)
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
		"configeffort": func(experiments.Options) (string, error) {
			r, err := experiments.ConfigEffort(".")
			if err != nil {
				return "", err
			}
			return r.String(), nil
		},
	}
}

func names() []string {
	var out []string
	for name := range catalog() {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  splitsim list                      list available experiments
  splitsim run <name|all> [flags]    run an experiment

flags for run:
  -scale f   duration/topology scale (default 1.0 = paper scale)
  -seed n    random seed (default 42)

experiments: %v
`, names())
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, n := range names() {
			fmt.Println(n)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		scale := fs.Float64("scale", 1.0, "duration/topology scale")
		seed := fs.Uint64("seed", 42, "random seed")
		if len(os.Args) < 3 {
			usage()
		}
		name := os.Args[2]
		_ = fs.Parse(os.Args[3:])
		opts := experiments.Options{Scale: *scale, Seed: *seed}
		cat := catalog()
		run := func(n string) {
			r, ok := cat[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try: %v\n", n, names())
				os.Exit(1)
			}
			out, err := r(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println(out)
		}
		if name == "all" {
			for _, n := range names() {
				run(n)
			}
			return
		}
		run(name)
	default:
		usage()
	}
}
